"""k-nearest-neighbour graphs via similarity joins.

Nearest-neighbour methods are among the join-based algorithms the paper
motivates (nearest-neighbour clustering [HT 93], proximity analysis).
A kNN graph can be computed from similarity joins alone: run a
distance-collecting self-join at a radius estimated from the k-distance
heuristic, keep each point's k closest neighbours, and re-join with a
doubled radius while any point still has fewer than k — each round is
one join, no per-point range queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..data.synthetic import epsilon_for_average_neighbors


@dataclass
class KNNGraph:
    """The k nearest neighbours of every point.

    ``neighbors[i]`` and ``distances[i]`` hold point ``i``'s neighbours
    sorted by increasing distance; rows of points with fewer than ``k``
    neighbours available (tiny data sets) are padded with ``-1`` /
    ``inf``.
    """

    k: int
    neighbors: np.ndarray
    distances: np.ndarray
    rounds: int
    final_epsilon: float

    def __len__(self) -> int:
        return len(self.neighbors)

    def mean_knn_distance(self) -> float:
        """Mean distance to the k-th neighbour (density summary)."""
        kth = self.distances[:, -1]
        return float(kth[np.isfinite(kth)].mean())


def _collect(n: int, k: int, join: JoinResult
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    ids_a, ids_b = join.pairs()
    dists = join.distances()
    src = np.concatenate([ids_a, ids_b])
    dst = np.concatenate([ids_b, ids_a])
    dd = np.concatenate([dists, dists])
    neighbors = np.full((n, k), -1, dtype=np.int64)
    distances = np.full((n, k), np.inf)
    counts = np.bincount(src, minlength=n)
    order = np.argsort(src, kind="stable")
    src, dst, dd = src[order], dst[order], dd[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        if hi == lo:
            continue
        cand_d = dd[lo:hi]
        cand_i = dst[lo:hi]
        take = min(k, hi - lo)
        sel = np.argpartition(cand_d, take - 1)[:take]
        sel = sel[np.argsort(cand_d[sel], kind="stable")]
        neighbors[i, :take] = cand_i[sel]
        distances[i, :take] = cand_d[sel]
    return neighbors, distances, counts


def knn_graph(points: np.ndarray, k: int,
              initial_epsilon: Optional[float] = None,
              max_rounds: int = 12,
              metric=None) -> KNNGraph:
    """Exact kNN graph of a point set via iterated similarity joins.

    Parameters
    ----------
    k:
        Neighbours per point (the point itself excluded).
    initial_epsilon:
        Starting join radius; defaults to the k-distance estimate.
    max_rounds:
        Safety bound on the doubling rounds.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if k < 1:
        raise ValueError("k must be at least 1")
    if n <= 1:
        return KNNGraph(k=k,
                        neighbors=np.full((n, k), -1, dtype=np.int64),
                        distances=np.full((n, k), np.inf),
                        rounds=0, final_epsilon=0.0)
    if initial_epsilon is None:
        target = min(k + 1, n - 1)
        initial_epsilon = epsilon_for_average_neighbors(
            pts, target_neighbors=target,
            sample=min(256, n))
    epsilon = validate_epsilon(initial_epsilon)

    want = min(k, n - 1)
    neighbors = distances = None
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        join = JoinResult(collect_distances=True)
        ego_self_join(pts, epsilon, result=join, metric=metric)
        neighbors, distances, counts = _collect(n, k, join)
        # A point's kNN list is final once its k-th candidate is within
        # the current radius (anything outside epsilon could still be
        # closer than a missing candidate, hence the check).
        if (counts >= want).all():
            break
        epsilon *= 2.0
    return KNNGraph(k=k, neighbors=neighbors, distances=distances,
                    rounds=rounds, final_epsilon=epsilon)


def knn_graph_from_store(store, k: int, max_rounds: int = 12
                         ) -> Tuple[np.ndarray, KNNGraph]:
    """kNN graph of an :class:`~repro.service.EGOStore`'s live points.

    The same doubling-radius recipe as :func:`knn_graph`, but every
    round is a store join — delta-aware and served from the resident
    order — starting at the store ε.  Returns ``(ids, graph)``; the
    graph's neighbour entries are *user ids* (padding stays ``-1``).
    """
    ids, _pts = store.live_points()
    n = len(ids)
    if k < 1:
        raise ValueError("k must be at least 1")
    if n <= 1:
        return ids, KNNGraph(
            k=k, neighbors=np.full((n, k), -1, dtype=np.int64),
            distances=np.full((n, k), np.inf), rounds=0,
            final_epsilon=0.0)
    lookup = {int(u): i for i, u in enumerate(ids.tolist())}
    epsilon = store.epsilon
    want = min(k, n - 1)
    neighbors = distances = None
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        join = store.join_result(epsilon, collect_distances=True)
        a, b = join.pairs()
        positional = JoinResult(collect_distances=True)
        if len(a):
            pa = np.fromiter((lookup[int(u)] for u in a.tolist()),
                             dtype=np.int64, count=len(a))
            pb = np.fromiter((lookup[int(u)] for u in b.tolist()),
                             dtype=np.int64, count=len(b))
            positional.add_batch(pa, pb, distances=join.distances())
        neighbors, distances, counts = _collect(n, k, positional)
        if (counts >= want).all():
            break
        epsilon *= 2.0
    mapped = np.where(neighbors >= 0, ids[np.clip(neighbors, 0, None)],
                      np.int64(-1))
    return ids, KNNGraph(k=k, neighbors=mapped, distances=distances,
                         rounds=rounds, final_epsilon=epsilon)
