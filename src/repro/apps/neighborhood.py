"""ε-neighborhood graphs built from a similarity join.

The paper's motivation (Section 1): many data-mining algorithms only
need, for every point, its neighbours within ε — which is exactly the
output of a similarity self-join.  This module turns the join's pair
list into the structures those algorithms consume: degree counts, a CSR
adjacency, connected components (single-link clustering cut at ε) via
union-find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..core.ego_join import ego_self_join


class UnionFind:
    """Disjoint-set forest with path halving and union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        """Representative of ``x``'s set."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def labels(self) -> np.ndarray:
        """Compact 0-based component label per element."""
        roots = np.array([self.find(i) for i in range(len(self.parent))])
        _uniq, labels = np.unique(roots, return_inverse=True)
        return labels


@dataclass
class NeighborhoodGraph:
    """CSR adjacency of the ε-neighborhood relation on ``n`` points."""

    n: int
    epsilon: float
    indptr: np.ndarray
    indices: np.ndarray

    @classmethod
    def from_pairs(cls, n: int, epsilon: float, ids_a: np.ndarray,
                   ids_b: np.ndarray) -> "NeighborhoodGraph":
        """Build the graph from self-join pairs (each unordered pair once)."""
        validate_epsilon(epsilon)
        ids_a = np.asarray(ids_a, dtype=np.int64)
        ids_b = np.asarray(ids_b, dtype=np.int64)
        if len(ids_a) != len(ids_b):
            raise ValueError("pair arrays differ in length")
        src = np.concatenate([ids_a, ids_b])
        dst = np.concatenate([ids_b, ids_a])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n=n, epsilon=epsilon, indptr=indptr, indices=dst)

    @classmethod
    def build(cls, points: np.ndarray, epsilon: float,
              result: Optional[JoinResult] = None) -> "NeighborhoodGraph":
        """Build the graph of a point set, running an EGO self-join."""
        pts = np.asarray(points, dtype=np.float64)
        if result is None:
            result = ego_self_join(pts, epsilon)
        a, b = result.pairs()
        return cls.from_pairs(len(pts), epsilon, a, b)

    def degree(self) -> np.ndarray:
        """Number of ε-neighbours of every point (self excluded)."""
        return np.diff(self.indptr)

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbour ids of point ``i``."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def connected_components(self) -> np.ndarray:
        """Component label per point (single-link clustering cut at ε)."""
        uf = UnionFind(self.n)
        starts = self.indptr[:-1]
        for i in range(self.n):
            for j in self.indices[starts[i]:self.indptr[i + 1]]:
                uf.union(i, int(j))
        return uf.labels()

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2


def epsilon_graph(points: np.ndarray, epsilon: float) -> NeighborhoodGraph:
    """Convenience: the ε-neighborhood graph of a point set via EGO join."""
    return NeighborhoodGraph.build(points, epsilon)
