"""Applications built on top of the similarity join."""

from .colocation import ColocationPattern, colocation_patterns
from .dbscan import (NOISE, DBSCANResult, dbscan, dbscan_from_graph,
                     dbscan_from_store)
from .knn import KNNGraph, knn_graph, knn_graph_from_store
from .neighborhood import NeighborhoodGraph, UnionFind, epsilon_graph
from .optics import OPTICSResult, optics
from .outliers import OutlierResult, distance_based_outliers

__all__ = [
    "ColocationPattern",
    "DBSCANResult",
    "NOISE",
    "KNNGraph",
    "NeighborhoodGraph",
    "OPTICSResult",
    "OutlierResult",
    "UnionFind",
    "colocation_patterns",
    "dbscan",
    "dbscan_from_graph",
    "dbscan_from_store",
    "distance_based_outliers",
    "epsilon_graph",
    "knn_graph",
    "knn_graph_from_store",
    "optics",
]
