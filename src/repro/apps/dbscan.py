"""DBSCAN on top of a similarity join (cf. [BBBK 00], [SEKX 98]).

The paper's flagship application: both DBSCAN subtasks — core-point
determination and cluster collection — are computed from a *single*
similarity self-join instead of one range query per point, "yielding
exactly the same result" with speed-ups of up to 54× reported in
[BBBK 00].

Semantics follow the original definition: a point is a *core point* if
its ε-neighbourhood (which includes the point itself) contains at least
``min_pts`` points; clusters are the transitive closure of core points
within ε of each other; non-core points within ε of a core point are
*border points* of (one of) its cluster(s); the rest is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.result import JoinResult
from .neighborhood import NeighborhoodGraph, UnionFind

NOISE = -1


@dataclass
class DBSCANResult:
    """Cluster labels and point roles of one DBSCAN run."""

    labels: np.ndarray
    core_mask: np.ndarray

    @property
    def num_clusters(self) -> int:
        """Number of clusters found (noise excluded)."""
        labels = self.labels[self.labels != NOISE]
        return int(len(np.unique(labels)))

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of noise points."""
        return self.labels == NOISE

    @property
    def border_mask(self) -> np.ndarray:
        """Boolean mask of border points (clustered but not core)."""
        return (self.labels != NOISE) & ~self.core_mask


def dbscan_from_graph(graph: NeighborhoodGraph,
                      min_pts: int) -> DBSCANResult:
    """DBSCAN given a precomputed ε-neighborhood graph."""
    if min_pts < 1:
        raise ValueError("min_pts must be at least 1")
    n = graph.n
    # |N_eps(p)| includes p itself, hence the +1.
    core = (graph.degree() + 1) >= min_pts

    # Cluster collection: union core points that are ε-neighbours.
    uf = UnionFind(n)
    for i in np.nonzero(core)[0]:
        for j in graph.neighbors(int(i)):
            if core[j]:
                uf.union(int(i), int(j))

    labels = np.full(n, NOISE, dtype=np.int64)
    core_idx = np.nonzero(core)[0]
    if len(core_idx):
        roots = np.array([uf.find(int(i)) for i in core_idx])
        _uniq, compact = np.unique(roots, return_inverse=True)
        labels[core_idx] = compact
        # Border points adopt the cluster of an arbitrary core neighbour
        # (DBSCAN's well-known tie: border points on two clusters'
        # frontiers get one of them).
        for i in np.nonzero(~core)[0]:
            for j in graph.neighbors(int(i)):
                if core[j]:
                    labels[i] = labels[j]
                    break
    return DBSCANResult(labels=labels, core_mask=core)


def dbscan(points: np.ndarray, epsilon: float, min_pts: int,
           join_result: Optional[JoinResult] = None,
           metric=None) -> DBSCANResult:
    """DBSCAN via one EGO similarity self-join.

    ``join_result`` may supply precomputed join pairs (e.g. from the
    external pipeline); otherwise an in-memory EGO join is run, using
    ``metric`` (default Euclidean).
    """
    pts = np.asarray(points, dtype=np.float64)
    if join_result is None:
        join_result = ego_self_join(pts, epsilon, metric=metric)
    a, b = join_result.pairs()
    graph = NeighborhoodGraph.from_pairs(len(pts), epsilon, a, b)
    return dbscan_from_graph(graph, min_pts)


def dbscan_from_store(store, min_pts: int,
                      epsilon: Optional[float] = None
                      ) -> Tuple[np.ndarray, DBSCANResult]:
    """DBSCAN over the live set of a :class:`~repro.service.EGOStore`.

    The store's incrementally-maintained (and cached) self-join stands
    in for the batch join, so re-clustering after inserts or deletes
    reuses the resident sorted order instead of re-sorting.  Returns
    ``(ids, result)``: ``result.labels[i]`` labels the point with user
    id ``ids[i]`` (ids ascending).
    """
    ids, _pts = store.live_points()
    eps = store.epsilon if epsilon is None else float(epsilon)
    pairs = store.join(eps)
    # Store pairs carry user ids; the graph wants positions 0..n-1.
    if len(pairs):
        lookup = {int(u): i for i, u in enumerate(ids.tolist())}
        a = np.fromiter((lookup[int(u)] for u in pairs[:, 0].tolist()),
                        dtype=np.int64, count=len(pairs))
        b = np.fromiter((lookup[int(u)] for u in pairs[:, 1].tolist()),
                        dtype=np.int64, count=len(pairs))
    else:
        a = b = np.empty(0, dtype=np.int64)
    graph = NeighborhoodGraph.from_pairs(len(ids), eps, a, b)
    return ids, dbscan_from_graph(graph, min_pts)
