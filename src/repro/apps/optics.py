"""OPTICS density ordering from one similarity join.

The paper lists OPTICS [ABKS 99] among the data-mining algorithms that
can run on top of the similarity join.  Everything OPTICS needs within
its generating distance ε — each point's ε-neighbours *with distances*
— is exactly the output of a distance-collecting similarity self-join,
so no range queries are issued at all.

Semantics follow [ABKS 99] with the same neighbourhood convention as
:mod:`repro.apps.dbscan` (a point belongs to its own ε-neighbourhood):

* the *core distance* of ``p`` is the distance to its ``min_pts``-th
  closest object (counting ``p`` itself), undefined when fewer than
  ``min_pts`` objects lie within ε;
* the *reachability distance* of ``q`` from ``p`` is
  ``max(core_distance(p), dist(p, q))``;
* the ordering greedily expands the point with the smallest current
  reachability, seeding a fresh start (reachability undefined) whenever
  the seed list runs dry.

``OPTICSResult.extract_dbscan`` yields the flat clustering of
[ABKS 99]'s ExtractDBSCAN for any ε′ ≤ ε, equivalent to DBSCAN(ε′) up
to the assignment of border points.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult

UNDEFINED = np.inf


@dataclass
class OPTICSResult:
    """Cluster-ordering output of one OPTICS run."""

    ordering: np.ndarray
    reachability: np.ndarray
    core_distance: np.ndarray
    epsilon: float
    min_pts: int

    def reachability_plot(self) -> np.ndarray:
        """Reachability values in visit order (the classic OPTICS plot)."""
        return self.reachability[self.ordering]

    def extract_dbscan(self, eps_prime: float) -> np.ndarray:
        """Flat DBSCAN-equivalent labels at a threshold ε′ ≤ ε.

        Returns a label per point (``-1`` = noise), per [ABKS 99]'s
        ExtractDBSCAN scan over the cluster ordering.
        """
        validate_epsilon(eps_prime)
        if eps_prime > self.epsilon:
            raise ValueError(
                f"eps_prime {eps_prime} exceeds the generating distance "
                f"{self.epsilon}")
        labels = np.full(len(self.ordering), -1, dtype=np.int64)
        cluster = -1
        for p in self.ordering:
            if self.reachability[p] > eps_prime:
                if self.core_distance[p] <= eps_prime:
                    cluster += 1
                    labels[p] = cluster
                # else: noise (stays -1)
            else:
                labels[p] = cluster
        return labels


def _neighbor_lists(n: int, ids_a: np.ndarray, ids_b: np.ndarray,
                    dists: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR neighbour lists with distances from self-join pairs."""
    src = np.concatenate([ids_a, ids_b])
    dst = np.concatenate([ids_b, ids_a])
    dd = np.concatenate([dists, dists])
    order = np.argsort(src, kind="stable")
    src, dst, dd = src[order], dst[order], dd[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst, dd


def optics(points: np.ndarray, epsilon: float, min_pts: int,
           join_result: Optional[JoinResult] = None) -> OPTICSResult:
    """OPTICS cluster ordering via one EGO similarity self-join.

    ``join_result`` may supply precomputed pairs, but must then have
    been collected with ``collect_distances=True``.
    """
    eps = validate_epsilon(epsilon)
    if min_pts < 1:
        raise ValueError("min_pts must be at least 1")
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if join_result is None:
        join_result = JoinResult(collect_distances=True)
        ego_self_join(pts, eps, result=join_result)
    if not join_result.collect_distances:
        raise ValueError("OPTICS needs a distance-collecting join result")
    ids_a, ids_b = join_result.pairs()
    dists = join_result.distances()
    indptr, neighbors, ndists = _neighbor_lists(n, ids_a, ids_b, dists)

    # Core distances: p itself is the closest object, so the min_pts-th
    # closest object is the (min_pts - 1)-th nearest neighbour.
    core = np.full(n, UNDEFINED)
    for p in range(n):
        lo, hi = indptr[p], indptr[p + 1]
        if hi - lo + 1 >= min_pts:
            if min_pts == 1:
                core[p] = 0.0
            else:
                nd = np.partition(ndists[lo:hi], min_pts - 2)
                core[p] = nd[min_pts - 2]

    reach = np.full(n, UNDEFINED)
    processed = np.zeros(n, dtype=bool)
    ordering: List[int] = []
    seeds: List[Tuple[float, int]] = []   # lazy-delete heap

    def update_seeds(p: int) -> None:
        cd = core[p]
        lo, hi = indptr[p], indptr[p + 1]
        for q, d in zip(neighbors[lo:hi], ndists[lo:hi]):
            q = int(q)
            if processed[q]:
                continue
            new_reach = max(cd, d)
            if new_reach < reach[q]:
                reach[q] = new_reach
                heapq.heappush(seeds, (new_reach, q))

    for start in range(n):
        if processed[start]:
            continue
        processed[start] = True
        ordering.append(start)
        if core[start] < UNDEFINED:
            update_seeds(start)
        while seeds:
            r, q = heapq.heappop(seeds)
            if processed[q] or r > reach[q]:
                continue            # stale heap entry
            processed[q] = True
            ordering.append(q)
            if core[q] < UNDEFINED:
                update_seeds(q)

    return OPTICSResult(ordering=np.array(ordering, dtype=np.int64),
                        reachability=reach, core_distance=core,
                        epsilon=eps, min_pts=min_pts)
