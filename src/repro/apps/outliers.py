"""Distance-based outlier detection on top of a similarity join.

Implements the DB(p, D) outliers of Knorr & Ng [KN 98], one of the
join-based data-mining algorithms the paper lists: an object ``o`` is a
*DB(p, D) outlier* if at most a fraction ``1 − p`` of the data set lies
within distance ``D`` of ``o`` (equivalently: at least a fraction ``p``
lies farther than ``D``).  The neighbour counts are exactly the degrees
of a similarity self-join with ε = D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.result import JoinResult


@dataclass
class OutlierResult:
    """Outcome of DB(p, D) outlier detection."""

    outlier_mask: np.ndarray
    neighbor_counts: np.ndarray
    threshold: int

    @property
    def outlier_ids(self) -> np.ndarray:
        """Row indices of the detected outliers."""
        return np.nonzero(self.outlier_mask)[0]

    @property
    def num_outliers(self) -> int:
        """Number of detected outliers."""
        return int(self.outlier_mask.sum())


def distance_based_outliers(points: np.ndarray, distance: float,
                            fraction: float = 0.95,
                            join_result: Optional[JoinResult] = None,
                            metric=None) -> OutlierResult:
    """DB(p, D) outliers of a point set via one similarity self-join.

    Parameters
    ----------
    distance:
        The distance ``D`` of the definition (the join's ε).
    fraction:
        The fraction ``p``: a point is an outlier when fewer than
        ``(1 − p) · n`` *other* points lie within ``D``.
    join_result:
        Optional precomputed self-join pairs at ε = ``distance``.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if join_result is None:
        join_result = ego_self_join(pts, distance, metric=metric)
    a, b = join_result.pairs()
    counts = (np.bincount(a, minlength=n)
              + np.bincount(b, minlength=n)) if len(a) else np.zeros(
                  n, dtype=np.int64)
    threshold = int(np.floor((1.0 - fraction) * n))
    mask = counts <= threshold
    return OutlierResult(outlier_mask=mask, neighbor_counts=counts,
                         threshold=threshold)
