"""Spatial co-location patterns on top of the similarity join.

Spatial association rules [KH 95] are among the algorithms the paper
lists as join-based: "is_near" relationships between labeled spatial
objects are exactly the pairs of a similarity self-join, and mining
which label pairs co-occur within ε more often than expected is a
counting pass over the join result.

The module finds **co-location pairs**: label pairs (A, B) whose
*participation ratio* — the fraction of A-objects with a B-neighbour
within ε, and vice versa — clears a threshold (the standard
participation-index formulation of co-location mining).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.result import JoinResult


@dataclass
class ColocationPattern:
    """One discovered co-location pair."""

    label_a: int
    label_b: int
    participation_a: float
    participation_b: float
    pair_count: int

    @property
    def participation_index(self) -> float:
        """The pattern's strength: min of the two participation ratios."""
        return min(self.participation_a, self.participation_b)


def colocation_patterns(points: np.ndarray, labels: Sequence[int],
                        epsilon: float, min_participation: float = 0.5,
                        join_result: Optional[JoinResult] = None,
                        metric=None) -> List[ColocationPattern]:
    """Mine co-location label pairs via one similarity self-join.

    Parameters
    ----------
    labels:
        Integer label per point (feature type of the spatial object).
    min_participation:
        Minimum participation index for a pattern to be reported.

    Returns patterns sorted by decreasing participation index; both
    within-label (A, A) and cross-label (A, B) patterns are considered.
    """
    if not 0.0 < min_participation <= 1.0:
        raise ValueError(
            f"min_participation must be in (0, 1], got {min_participation}")
    pts = np.asarray(points, dtype=np.float64)
    lab = np.asarray(labels, dtype=np.int64)
    if len(lab) != len(pts):
        raise ValueError(
            f"labels ({len(lab)}) and points ({len(pts)}) differ in length")
    if join_result is None:
        join_result = ego_self_join(pts, epsilon, metric=metric)
    a, b = join_result.pairs()

    label_values, label_index = np.unique(lab, return_inverse=True)
    k = len(label_values)
    label_counts = np.bincount(label_index, minlength=k)

    # participates[i, l]: point i has an eps-neighbour of label l.
    participates = np.zeros((len(pts), k), dtype=bool)
    if len(a):
        participates[a, label_index[b]] = True
        participates[b, label_index[a]] = True
    pair_counts = np.zeros((k, k), dtype=np.int64)
    if len(a):
        la, lb = label_index[a], label_index[b]
        lo = np.minimum(la, lb)
        hi = np.maximum(la, lb)
        np.add.at(pair_counts, (lo, hi), 1)

    patterns: List[ColocationPattern] = []
    for i in range(k):
        for j in range(i, k):
            count = int(pair_counts[i, j])
            if count == 0:
                continue
            part_i = participates[label_index == i, j].mean()
            part_j = participates[label_index == j, i].mean()
            pattern = ColocationPattern(
                label_a=int(label_values[i]),
                label_b=int(label_values[j]),
                participation_a=float(part_i),
                participation_b=float(part_j),
                pair_count=count)
            if pattern.participation_index >= min_participation:
                patterns.append(pattern)
    patterns.sort(key=lambda p: p.participation_index, reverse=True)
    return patterns
