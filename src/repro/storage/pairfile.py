"""Disk-backed join-result storage.

At the paper's scale the join result can be far larger than main memory
(every point may have several ε-neighbours), so materialising pairs in
RAM is not always an option.  A :class:`PairFile` stores result pairs —
optionally with their distances — as fixed-width records on a simulated
disk, with buffered sequential writes; a :class:`SpillingCollector`
plugs it into :class:`~repro.core.result.JoinResult` as a callback, so
any join can stream its result to disk with bounded memory.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

import numpy as np

from .disk import SimulatedDisk

PAIR_MAGIC = b"REPROPRS"
PAIR_HEADER_SIZE = 32
_PAIR_HEADER = struct.Struct("<8sIIQQ")
_PAIR_VERSION = 1


class PairFile:
    """A headered file of (id_a, id_b[, distance]) records."""

    def __init__(self, disk: SimulatedDisk, count: int,
                 with_distances: bool) -> None:
        self.disk = disk
        self.count = count
        self.with_distances = with_distances

    @property
    def record_bytes(self) -> int:
        """Width of one encoded pair record."""
        return 24 if self.with_distances else 16

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, disk: SimulatedDisk,
               with_distances: bool = False) -> "PairFile":
        """Initialise ``disk`` with an empty pair file."""
        pf = cls(disk, count=0, with_distances=with_distances)
        disk.truncate(0)
        pf.flush_header()
        return pf

    @classmethod
    def open(cls, disk: SimulatedDisk) -> "PairFile":
        """Open the pair file already present on ``disk``."""
        raw = disk.read(0, PAIR_HEADER_SIZE)
        if len(raw) < PAIR_HEADER_SIZE:
            raise ValueError("file too short for a pair-file header")
        magic, version, flags, count, _ = _PAIR_HEADER.unpack(raw)
        if magic != PAIR_MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a pair file")
        if version != _PAIR_VERSION:
            raise ValueError(f"unsupported pair-file version {version}")
        return cls(disk, count=count, with_distances=bool(flags & 1))

    def flush_header(self) -> None:
        """Persist the header (count + flags)."""
        flags = 1 if self.with_distances else 0
        self.disk.write(0, _PAIR_HEADER.pack(
            PAIR_MAGIC, _PAIR_VERSION, flags, self.count, 0))

    # -- record access --------------------------------------------------------

    def append(self, ids_a: np.ndarray, ids_b: np.ndarray,
               distances: Optional[np.ndarray] = None) -> None:
        """Append a batch of pairs (one sequential write)."""
        ids_a = np.ascontiguousarray(ids_a, dtype=np.int64)
        ids_b = np.ascontiguousarray(ids_b, dtype=np.int64)
        if len(ids_a) != len(ids_b):
            raise ValueError("id arrays differ in length")
        if self.with_distances:
            if distances is None:
                raise ValueError("this pair file stores distances")
            if len(distances) != len(ids_a):
                raise ValueError("distance array length mismatch")
            buf = np.empty((len(ids_a), 3), dtype="<f8")
            buf[:, 0:1].view("<i8")[:, 0] = ids_a
            buf[:, 1:2].view("<i8")[:, 0] = ids_b
            buf[:, 2] = np.asarray(distances, dtype=np.float64)
        else:
            buf = np.empty((len(ids_a), 2), dtype="<i8")
            buf[:, 0] = ids_a
            buf[:, 1] = ids_b
        offset = PAIR_HEADER_SIZE + self.count * self.record_bytes
        self.disk.write(offset, buf.tobytes())
        self.count += len(ids_a)

    def read_range(self, first: int, n: int
                   ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Read ``n`` pair records starting at index ``first``."""
        if first < 0 or n < 0 or first + n > self.count:
            raise IndexError(
                f"pair range [{first}, {first + n}) out of bounds for "
                f"{self.count} records")
        offset = PAIR_HEADER_SIZE + first * self.record_bytes
        data = self.disk.read(offset, n * self.record_bytes)
        if self.with_distances:
            raw = np.frombuffer(data, dtype="<f8").reshape(n, 3)
            a = raw[:, 0:1].copy().view("<i8")[:, 0]
            b = raw[:, 1:2].copy().view("<i8")[:, 0]
            return a, b, raw[:, 2].copy()
        raw = np.frombuffer(data, dtype="<i8").reshape(n, 2)
        return raw[:, 0].copy(), raw[:, 1].copy(), None

    def read_all(self) -> Tuple[np.ndarray, np.ndarray,
                                Optional[np.ndarray]]:
        """Read every pair record."""
        return self.read_range(0, self.count)

    def iter_batches(self, batch: int = 65536
                     ) -> Iterator[Tuple[np.ndarray, np.ndarray,
                                         Optional[np.ndarray]]]:
        """Yield the pairs in batches of at most ``batch`` records."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        pos = 0
        while pos < self.count:
            n = min(batch, self.count - pos)
            yield self.read_range(pos, n)
            pos += n

    def truncate_to(self, count: int) -> None:
        """Discard every pair past ``count`` (crash-recovery rollback).

        Resuming from a checkpoint truncates the result file back to the
        journal's pair watermark, discarding any partially-appended batch
        a crash left behind; subsequent appends then land at exactly the
        offsets an uninterrupted run would have used, making result
        appends idempotent.
        """
        if count < 0 or count > self.count:
            raise ValueError(
                f"cannot truncate to {count} pairs; file has {self.count}")
        self.disk.truncate(PAIR_HEADER_SIZE + count * self.record_bytes)
        self.count = count
        self.flush_header()

    def close(self) -> None:
        """Persist the header; the disk stays open."""
        self.flush_header()


class SpillingCollector:
    """Streams join results to a :class:`PairFile` with bounded memory.

    Use :meth:`make_result` to obtain a
    :class:`~repro.core.result.JoinResult` wired to spill here, run the
    join with it, then :meth:`close`.
    """

    def __init__(self, pair_file: PairFile,
                 buffer_pairs: int = 65536) -> None:
        if buffer_pairs <= 0:
            raise ValueError("buffer_pairs must be positive")
        self.pair_file = pair_file
        self.buffer_pairs = buffer_pairs
        self._a: list = []
        self._b: list = []
        self._d: list = []
        self._pending = 0

    def __call__(self, ids_a: np.ndarray, ids_b: np.ndarray) -> None:
        self._a.append(np.asarray(ids_a, dtype=np.int64).copy())
        self._b.append(np.asarray(ids_b, dtype=np.int64).copy())
        self._pending += len(ids_a)
        if self._pending >= self.buffer_pairs:
            self.flush()

    def make_result(self):
        """A non-materialising JoinResult that spills through this collector."""
        from ..core.result import JoinResult
        if self.pair_file.with_distances:
            raise ValueError(
                "distance-spilling requires driving the collector "
                "explicitly; JoinResult callbacks carry ids only")
        return JoinResult(materialize=False, callback=self)

    def flush(self) -> None:
        """Write buffered pairs to the file."""
        if not self._pending:
            return
        self.pair_file.append(np.concatenate(self._a),
                              np.concatenate(self._b))
        self._a.clear()
        self._b.clear()
        self._pending = 0

    def __enter__(self) -> "SpillingCollector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush and persist the pair-file header."""
        self.flush()
        self.pair_file.close()
