"""Point files: headered record files with I/O-unit access.

A :class:`PointFile` stores a header followed by fixed-width point records
(see :mod:`repro.storage.records`) on a :class:`~repro.storage.disk.SimulatedDisk`.

The EGO join reads the file in **I/O units**: byte windows of a fixed,
hardware-friendly size.  Because the unit size is independent of the
record size, records may straddle unit boundaries; following Section 3.2
of the paper, each record belongs to the unit in which it *starts*, and
the dangling tail fragment is covered by slightly extending the unit's
single contiguous read.  The number of records per unit therefore varies
by one, exactly as the paper notes.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

import numpy as np

from .disk import SimulatedDisk
from .records import RecordCodec

MAGIC = b"REPROPTS"
HEADER_SIZE = 32
_HEADER_STRUCT = struct.Struct("<8sIIQQ")
_VERSION = 1


class PointFile:
    """A file of point records on a simulated disk.

    Use :meth:`create` for a new file or :meth:`open` for an existing one.
    Appends are buffered per call; :meth:`flush_header` persists the record
    count (done automatically by :meth:`close`).
    """

    def __init__(self, disk: SimulatedDisk, codec: RecordCodec,
                 count: int, data_start: int = HEADER_SIZE) -> None:
        self.disk = disk
        self.codec = codec
        self.count = count
        self.data_start = data_start

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, disk: SimulatedDisk, dimensions: int) -> "PointFile":
        """Initialise ``disk`` with an empty point file of ``dimensions``."""
        pf = cls(disk, RecordCodec(dimensions), count=0)
        disk.truncate(0)
        pf.flush_header()
        return pf

    @classmethod
    def open(cls, disk: SimulatedDisk) -> "PointFile":
        """Open the point file already present on ``disk``."""
        raw = disk.read(0, HEADER_SIZE)
        if len(raw) < HEADER_SIZE:
            raise ValueError("file too short to contain a point-file header")
        magic, version, dims, count, _reserved = _HEADER_STRUCT.unpack(raw)
        if magic != MAGIC:
            raise ValueError(f"bad magic {magic!r}; not a point file")
        if version != _VERSION:
            raise ValueError(f"unsupported point-file version {version}")
        return cls(disk, RecordCodec(dims), count=count)

    def flush_header(self) -> None:
        """Write the header (including the current record count) to disk."""
        header = _HEADER_STRUCT.pack(
            MAGIC, _VERSION, self.codec.dimensions, self.count, 0)
        self.disk.write(0, header)

    def close(self) -> None:
        """Persist the header; the underlying disk stays open."""
        self.flush_header()

    # -- basic properties -------------------------------------------------

    @property
    def dimensions(self) -> int:
        """Dimensionality of the stored points."""
        return self.codec.dimensions

    @property
    def record_bytes(self) -> int:
        """Width of one record in bytes."""
        return self.codec.record_bytes

    @property
    def data_bytes(self) -> int:
        """Total bytes of record data currently in the file."""
        return self.count * self.record_bytes

    def __len__(self) -> int:
        return self.count

    # -- record access ----------------------------------------------------

    def append(self, ids: np.ndarray, points: np.ndarray) -> None:
        """Append records for parallel ``ids``/``points`` arrays."""
        data = self.codec.encode(ids, points)
        offset = self.data_start + self.data_bytes
        self.disk.write(offset, data)
        self.count += len(ids)

    def read_range(self, first: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read ``n`` records starting at record index ``first``."""
        if first < 0 or n < 0 or first + n > self.count:
            raise IndexError(
                f"record range [{first}, {first + n}) out of bounds "
                f"for {self.count} records")
        if n == 0:
            return self.codec.decode(b"")
        offset = self.data_start + first * self.record_bytes
        data = self.disk.read(offset, n * self.record_bytes)
        return self.codec.decode(data)

    def read_all(self) -> Tuple[np.ndarray, np.ndarray]:
        """Read every record in the file."""
        return self.read_range(0, self.count)

    def iter_chunks(self, chunk_records: int
                    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(ids, points)`` chunks of at most ``chunk_records``."""
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        pos = 0
        while pos < self.count:
            n = min(chunk_records, self.count - pos)
            yield self.read_range(pos, n)
            pos += n

    def data_crc32(self, chunk_records: int = 8192) -> int:
        """CRC32 over the raw bytes of the data region.

        Recorded in the resume journal when a durable artifact (the
        sorted file) completes, and checked before a resumed run trusts
        it — a cheap whole-file complement to the per-page verification
        of :class:`~repro.storage.integrity.ChecksummedDisk`.
        """
        import zlib
        crc = 0
        pos = 0
        rec = self.record_bytes
        while pos < self.count:
            n = min(chunk_records, self.count - pos)
            raw = self.disk.read(self.data_start + pos * rec, n * rec)
            crc = zlib.crc32(raw, crc)
            pos += n
        return crc

    # -- I/O units ----------------------------------------------------------

    def num_units(self, unit_bytes: int) -> int:
        """Number of I/O units of ``unit_bytes`` covering the data region."""
        if unit_bytes <= 0:
            raise ValueError("unit_bytes must be positive")
        data = self.data_bytes
        return (data + unit_bytes - 1) // unit_bytes

    def unit_record_range(self, unit: int, unit_bytes: int) -> Tuple[int, int]:
        """Record index range ``[first, last)`` of records *starting* in unit."""
        rec = self.record_bytes
        lo_byte = unit * unit_bytes
        hi_byte = min((unit + 1) * unit_bytes, self.data_bytes)
        first = -(-lo_byte // rec)          # ceil division
        last = -(-hi_byte // rec)
        first = min(first, self.count)
        last = min(last, self.count)
        return first, last

    def read_unit(self, unit: int, unit_bytes: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Read the records belonging to I/O unit ``unit``.

        Issues one contiguous read that covers the unit's whole records
        plus the tail fragment of its final record (which spills into the
        next unit), mirroring the fragment handling of Section 3.2.
        """
        first, last = self.unit_record_range(unit, unit_bytes)
        return self.read_range(first, last - first)


class SequentialWriter:
    """Buffered append-only writer used by run generation and merging.

    Batches appended records into large sequential writes so the simulated
    disk sees the access pattern an external sort actually produces.
    """

    def __init__(self, point_file: PointFile, buffer_records: int = 8192) -> None:
        if buffer_records <= 0:
            raise ValueError("buffer_records must be positive")
        self.point_file = point_file
        self.buffer_records = buffer_records
        self._ids: list = []
        self._points: list = []
        self._pending = 0

    def write(self, ids: np.ndarray, points: np.ndarray) -> None:
        """Queue records for writing, flushing when the buffer fills."""
        self._ids.append(np.asarray(ids, dtype=np.int64))
        self._points.append(np.asarray(points, dtype=np.float64))
        self._pending += len(ids)
        if self._pending >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        """Write all queued records to the file."""
        if not self._pending:
            return
        ids = np.concatenate(self._ids)
        points = np.concatenate(self._points)
        self.point_file.append(ids, points)
        self._ids.clear()
        self._points.clear()
        self._pending = 0

    def __enter__(self) -> "SequentialWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush pending records and persist the file header."""
        self.flush()
        self.point_file.close()


class SequentialReader:
    """Buffered forward reader over a record range of a point file."""

    def __init__(self, point_file: PointFile, first: int = 0,
                 count: Optional[int] = None,
                 buffer_records: int = 8192) -> None:
        if buffer_records <= 0:
            raise ValueError("buffer_records must be positive")
        self.point_file = point_file
        self.position = first
        end = point_file.count if count is None else first + count
        if end > point_file.count:
            raise IndexError("reader range exceeds file length")
        self.end = end
        self.buffer_records = buffer_records
        self._ids = np.empty(0, dtype=np.int64)
        self._points = np.empty((0, point_file.dimensions), dtype=np.float64)
        self._cursor = 0

    def exhausted(self) -> bool:
        """True when no records remain."""
        return self._cursor >= len(self._ids) and self.position >= self.end

    def _refill(self) -> None:
        n = min(self.buffer_records, self.end - self.position)
        self._ids, self._points = self.point_file.read_range(self.position, n)
        self.position += n
        self._cursor = 0

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next buffered batch of ``(ids, points)``."""
        if self._cursor >= len(self._ids):
            if self.position >= self.end:
                return (np.empty(0, dtype=np.int64),
                        np.empty((0, self.point_file.dimensions)))
            self._refill()
        ids = self._ids[self._cursor:]
        points = self._points[self._cursor:]
        self._cursor = len(self._ids)
        return ids, points

    def peek(self) -> Tuple[int, np.ndarray]:
        """Return the next record without consuming it."""
        if self._cursor >= len(self._ids):
            if self.position >= self.end:
                raise StopIteration("reader exhausted")
            self._refill()
        return int(self._ids[self._cursor]), self._points[self._cursor]

    def pop(self) -> Tuple[int, np.ndarray]:
        """Return the next record and advance past it."""
        record = self.peek()
        self._cursor += 1
        return record
