"""Crash-safe progress journal for the external join pipeline.

A :class:`Journal` records, per pipeline stage, what has *completed*:
sorted runs as they are written, merge passes as they finish, and joined
I/O-unit pairs together with the result file's pair count after each —
the watermark that makes result appends idempotent.  A run interrupted at
any point resumes by replaying nothing: completed work is skipped, the
result file is truncated back to the last watermark (discarding a
possibly-torn tail), and execution continues deterministically, producing
a byte-identical result to an uninterrupted run.

Every update rewrites the whole journal document atomically
(write temp → fsync → rename), so the journal is always a consistent
snapshot — a crash between two updates merely redoes the work recorded
after the snapshot, which the watermark makes safe.  The journal lives on
the *real* filesystem, outside the simulated-disk fault domain, standing
in for the replicated metadata store a production deployment would use.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set, Tuple

_FORMAT_VERSION = 1


class Journal:
    """Atomic JSON progress journal for checkpoint/resume.

    Parameters
    ----------
    path:
        Journal file location; loaded if it exists.
    flush_every:
        Persist after every ``flush_every`` record operations (state
        changes are always applied in memory immediately).  ``1`` — the
        default — persists on every update; larger values batch journal
        writes, trading a little redone work after a crash for fewer
        metadata writes.  Completion marks always persist immediately.
    """

    def __init__(self, path: str, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = path
        self.flush_every = flush_every
        self._dirty = 0
        self.state: Dict = {"version": _FORMAT_VERSION}
        self._pairs_done: Set[Tuple[int, int]] = set()
        if os.path.exists(path):
            self._load()

    # -- persistence --------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r") as fh:
            state = json.load(fh)
        version = state.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported journal version {version!r} in {self.path}")
        self.state = state
        self._pairs_done = {(int(a), int(b))
                            for a, b in state.get("unit_pairs", [])}

    def flush(self) -> None:
        """Atomically persist the current state (write temp, then rename)."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.state, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._dirty = 0

    def _changed(self, force: bool = False) -> None:
        self._dirty += 1
        if force or self._dirty >= self.flush_every:
            self.flush()

    def reset(self) -> None:
        """Discard all recorded progress (start the pipeline from scratch)."""
        self.state = {"version": _FORMAT_VERSION}
        self._pairs_done = set()
        self.flush()

    # -- sort phase ---------------------------------------------------------

    def record_sort_run(self, index: int, start_byte: int,
                        count: int) -> None:
        """Record sorted run ``index`` (input chunk order) as complete."""
        runs = self.state.setdefault("sort_runs", {})
        runs[str(index)] = [int(start_byte), int(count)]
        self._changed()

    def sort_run(self, index: int) -> Optional[Tuple[int, int]]:
        """``(start_byte, count)`` of a completed run, or ``None``."""
        entry = self.state.get("sort_runs", {}).get(str(index))
        return None if entry is None else (entry[0], entry[1])

    def record_merge_pass(self, pass_no: int,
                          layout: List[Tuple[int, int]]) -> None:
        """Record the run layout (start_byte, count) after merge ``pass_no``."""
        passes = self.state.setdefault("merge_passes", {})
        passes[str(pass_no)] = [[int(s), int(c)] for s, c in layout]
        self._changed(force=True)

    def latest_merge_pass(self) -> Optional[Tuple[int,
                                                  List[Tuple[int, int]]]]:
        """Most recent completed merge pass as ``(pass_no, layout)``."""
        passes = self.state.get("merge_passes", {})
        if not passes:
            return None
        pass_no = max(int(k) for k in passes)
        layout = [(int(s), int(c)) for s, c in passes[str(pass_no)]]
        return pass_no, layout

    def mark_sort_complete(self, count: int, runs_generated: int,
                           merge_passes: int) -> None:
        """Record that the sorted output file is complete and durable."""
        self.state["sort_complete"] = {"count": int(count),
                                       "runs_generated": int(runs_generated),
                                       "merge_passes": int(merge_passes)}
        self._changed(force=True)

    @property
    def sort_complete(self) -> Optional[Dict]:
        """Completion record of the sort phase, or ``None``."""
        return self.state.get("sort_complete")

    # -- join phase ---------------------------------------------------------

    def record_unit_pair(self, a: int, b: int, pair_watermark: int) -> None:
        """Record unit pair ``(a, b)`` joined, with the result count after it."""
        key = (min(int(a), int(b)), max(int(a), int(b)))
        if key in self._pairs_done:
            return
        self._pairs_done.add(key)
        self.state.setdefault("unit_pairs", []).append(list(key))
        self.state["pair_watermark"] = int(pair_watermark)
        self._changed()

    def pair_done(self, a: int, b: int) -> bool:
        """True when unit pair ``(a, b)`` completed before a crash."""
        key = (min(int(a), int(b)), max(int(a), int(b)))
        return key in self._pairs_done

    @property
    def pair_watermark(self) -> int:
        """Result-file pair count as of the last completed unit pair."""
        return int(self.state.get("pair_watermark", 0))

    # -- supervisor decisions ------------------------------------------------

    def record_supervisor_event(self, kind: str, a: int, b: int,
                                attempt: int) -> None:
        """Journal one supervisor fault-handling decision.

        Events are recorded in decision order so a resumed run can
        replay the counters (retries, recycles, degradation) of the
        work that completed before the crash — see
        :meth:`replay_supervisor_events`.
        """
        events = self.state.setdefault("supervisor_events", [])
        events.append([str(kind), int(a), int(b), int(attempt)])
        self._changed()

    def supervisor_events(self) -> List[Tuple[str, int, int, int]]:
        """All journaled supervisor decisions, in decision order."""
        return [(e[0], int(e[1]), int(e[2]), int(e[3]))
                for e in self.state.get("supervisor_events", [])]

    def replay_supervisor_events(self) -> List[Tuple[str, int, int, int]]:
        """Prune events of unfinished pairs; return the events to replay.

        A crash can land between journaling a decision for a unit pair
        and journaling the pair's completion.  The resumed run redoes
        that pair — and its deterministic faults re-fire — so replaying
        the orphaned decisions too would double-count them.  Events
        whose pair is not in the completed set are therefore dropped
        (self-pair ``degrade``/``pool_recycle`` markers included: the
        resumed run re-reaches that state on its own if it still holds).
        """
        events = self.state.get("supervisor_events", [])
        kept = [e for e in events
                if (min(int(e[1]), int(e[2])),
                    max(int(e[1]), int(e[2]))) in self._pairs_done]
        if len(kept) != len(events):
            self.state["supervisor_events"] = kept
            self._changed(force=True)
        return [(e[0], int(e[1]), int(e[2]), int(e[3])) for e in kept]

    # -- store update log ----------------------------------------------------
    #
    # The long-lived :class:`repro.service.store.EGOStore` journals its
    # build parameters once plus every mutating operation, in order.
    # Replaying the meta record and the op list through a fresh store
    # rebuilds it byte-identically (compactions are deterministic
    # functions of the op order, so they are not journaled).

    def record_store_meta(self, meta: Dict) -> None:
        """Record the store's build parameters (once, at creation)."""
        self.state["store_meta"] = dict(meta)
        self._changed(force=True)

    def store_meta(self) -> Optional[Dict]:
        """The store's build parameters, or ``None``."""
        return self.state.get("store_meta")

    def record_store_op(self, op: List) -> None:
        """Append one mutating store operation (insert/delete/set_epsilon)."""
        self.state.setdefault("store_ops", []).append(op)
        self._changed()

    def store_ops(self) -> List[List]:
        """All journaled store operations, in application order."""
        return self.state.get("store_ops", [])

    def mark_join_complete(self, total_pairs: int) -> None:
        """Record that the whole join finished with ``total_pairs`` results."""
        self.state["join_complete"] = {"pairs": int(total_pairs)}
        self._changed(force=True)

    @property
    def join_complete(self) -> Optional[Dict]:
        """Completion record of the join phase, or ``None``."""
        return self.state.get("join_complete")
