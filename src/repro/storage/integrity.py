"""Detection and recovery at the storage boundary: checksums and retries.

The fault layer (:mod:`repro.storage.faults`) makes reads lie and writes
tear; this module is the defence.  Two wrappers compose above any
disk-like object:

* :class:`ChecksummedDisk` maintains a CRC32 per fixed-size page,
  computed from the data the writer *intended* at write time and verified
  on every read, so silent corruption (a bit flip on the wire, a torn
  write discovered later) surfaces as a typed :class:`CorruptPageError`
  instead of wrong join results.  Reads are page-aligned — the wrapper
  widens each read to page boundaries, which is both what verification
  needs and how unbuffered raw-device I/O behaves anyway.
* :class:`RetryingDisk` applies a :class:`RetryPolicy` to reads: bounded
  attempts with exponential backoff, the backoff charged to the simulated
  clock, and fault/retry counters recorded in the shared
  :class:`~repro.storage.stats.IOCounters`.  Crashes
  (:class:`~repro.storage.faults.SimulatedCrash`) are deliberately never
  retried — they must escape like a real process death.

Page CRCs persist across simulated crashes in a sidecar file
(``<path>.crc32``, written atomically), standing in for the inline
per-page checksum words a production format would carry; either way the
checksum describes the *intended* page content, so a torn write fails
verification on the next read.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .faults import FaultPlan, FaultyDisk, TransientReadError

#: Default checksum-page size in bytes.
DEFAULT_PAGE_BYTES = 4096


class CorruptPageError(IOError):
    """A page's content does not match its recorded checksum."""

    def __init__(self, page: int, offset: int, detail: str = "") -> None:
        message = f"checksum mismatch on page {page} (byte offset {offset})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.page = page
        self.offset = offset


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with exponential backoff.

    ``max_attempts`` counts the initial try, so ``max_attempts=1`` means
    no retry at all.  The ``attempt``-th re-issue (0-based) waits
    ``initial_backoff_s * multiplier**attempt`` simulated seconds.
    """

    max_attempts: int = 4
    initial_backoff_s: float = 0.005
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.initial_backoff_s < 0:
            raise ValueError("initial_backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def backoff_s(self, attempt: int) -> float:
        """Simulated seconds to wait before re-issue number ``attempt``."""
        return self.initial_backoff_s * self.multiplier ** attempt


class ChecksummedDisk:
    """Verify-on-read CRC32 page layer over a disk-like object.

    Per page the layer keeps ``(covered_bytes, crc)``: a streaming CRC32
    of the page's written prefix.  Sequential writes (the dominant
    pattern of the external pipeline) extend the stream; a full rewrite
    of a page's prefix restarts it; any other overwrite or gap marks the
    page *uncheckable* (``crc = None``) — it is still readable, just no
    longer verified.  The header page of a point file, rewritten on every
    ``flush_header``, is the typical uncheckable page.
    """

    def __init__(self, inner, page_bytes: int = DEFAULT_PAGE_BYTES,
                 sidecar: bool = True) -> None:
        if page_bytes <= 0:
            raise ValueError(f"page_bytes must be positive, got {page_bytes}")
        self.inner = inner
        self.page_bytes = page_bytes
        self.sidecar = sidecar
        # page index -> (covered_bytes, crc32 | None)
        self._pages: Dict[int, Tuple[int, Optional[int]]] = {}
        if sidecar:
            self._load_sidecar()

    def __getattr__(self, name):
        return getattr(self.__dict__["inner"], name)

    @property
    def simulated_time_s(self) -> float:
        return self.inner.simulated_time_s

    @simulated_time_s.setter
    def simulated_time_s(self, value: float) -> None:
        self.inner.simulated_time_s = value

    def __enter__(self) -> "ChecksummedDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sidecar persistence ------------------------------------------------

    @property
    def sidecar_path(self) -> str:
        """Path of the persisted checksum table."""
        return self.inner.path + ".crc32"

    def _load_sidecar(self) -> None:
        try:
            with open(self.sidecar_path, "r") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return
        if doc.get("page_bytes") != self.page_bytes:
            return
        self._pages = {int(p): (int(cov), None if crc is None else int(crc))
                       for p, (cov, crc) in doc.get("pages", {}).items()}

    def save_sidecar(self) -> None:
        """Atomically persist the checksum table next to the backing file."""
        doc = {"page_bytes": self.page_bytes,
               "pages": {str(p): list(state)
                         for p, state in self._pages.items()}}
        tmp = self.sidecar_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.sidecar_path)

    def close(self) -> None:
        if self.sidecar:
            try:
                self.save_sidecar()
            except OSError:
                pass
        self.inner.close()

    # -- checksum bookkeeping -----------------------------------------------

    def _record_write(self, offset: int, data: bytes) -> None:
        P = self.page_bytes
        end = offset + len(data)
        for page in range(offset // P, (end + P - 1) // P):
            page_start = page * P
            s = max(offset, page_start) - page_start
            e = min(end, page_start + P) - page_start
            chunk = data[page_start + s - offset:page_start + e - offset]
            cov, crc = self._pages.get(page, (0, 0))
            if s == 0 and e >= cov:
                # Full rewrite of the covered prefix: restart the stream.
                self._pages[page] = (e, zlib.crc32(chunk))
            elif s == cov and crc is not None:
                # Exact sequential extension: stream the CRC forward.
                self._pages[page] = (e, zlib.crc32(chunk, crc))
            else:
                # Gap or partial overwrite: readable but unverifiable.
                self._pages[page] = (max(cov, e), None)

    def _verify(self, lo: int, data: bytes) -> None:
        P = self.page_bytes
        for page in range(lo // P, (lo + len(data) + P - 1) // P):
            state = self._pages.get(page)
            if state is None:
                continue
            cov, crc = state
            if crc is None or cov == 0:
                continue
            start = page * P - lo
            if start < 0:
                continue  # partially before the read window; not verifiable
            page_data = data[start:start + cov]
            if len(page_data) < cov:
                self.counters.corrupt_pages += 1
                raise CorruptPageError(
                    page, page * P,
                    f"page covers {cov} bytes but only "
                    f"{len(page_data)} are readable (torn write?)")
            if zlib.crc32(page_data) != crc:
                self.counters.corrupt_pages += 1
                raise CorruptPageError(page, page * P)

    # -- data path ----------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        """Page-aligned verified read of ``nbytes`` at ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        P = self.page_bytes
        lo = (offset // P) * P
        hi = -(-(offset + nbytes) // P) * P
        data = self.inner.read(lo, hi - lo)
        self._verify(lo, data)
        return data[offset - lo:offset - lo + nbytes]

    def write(self, offset: int, data: bytes) -> int:
        self._record_write(offset, data)
        return self.inner.write(offset, data)

    def append(self, data: bytes) -> int:
        offset = self.size()
        self.write(offset, data)
        return offset

    def truncate(self, nbytes: int) -> None:
        P = self.page_bytes
        boundary = nbytes // P
        for page in list(self._pages):
            if page > boundary or (page == boundary and nbytes % P == 0):
                del self._pages[page]
        if nbytes % P and boundary in self._pages:
            cov, crc = self._pages[boundary]
            cut = nbytes - boundary * P
            if cov > cut:
                # The stream cannot be rewound; keep the page readable
                # but drop verification for it.
                self._pages[boundary] = (cut, None)
        self.inner.truncate(nbytes)

    def verify_file(self, chunk_pages: int = 256) -> int:
        """Re-read and verify every checkable page; returns pages checked.

        Used when resuming from a checkpoint to prove that artifacts that
        survived a crash are intact before trusting them.
        """
        P = self.page_bytes
        checked = 0
        pages = sorted(p for p, (cov, crc) in self._pages.items()
                       if crc is not None and cov > 0)
        i = 0
        while i < len(pages):
            first = pages[i]
            j = i
            while (j + 1 < len(pages) and pages[j + 1] == pages[j] + 1
                   and j + 1 - i < chunk_pages):
                j += 1
            span = (pages[j] - first + 1) * P
            self.read(first * P, span)  # raises CorruptPageError on mismatch
            checked += j - i + 1
            i = j + 1
        return checked


class RetryingDisk:
    """Read-retry layer applying a :class:`RetryPolicy`.

    Catches :class:`~repro.storage.faults.TransientReadError` and
    :class:`CorruptPageError`, charges the policy's backoff to the
    simulated clock, and re-issues the read.  Counters
    (``read_faults``, ``read_retries``, ``retry_backoff_s``) accumulate
    in the shared :class:`~repro.storage.stats.IOCounters` of the base
    disk.  Exhausting the policy re-raises the last error.
    """

    def __init__(self, inner, policy: Optional[RetryPolicy] = None) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()

    def __getattr__(self, name):
        return getattr(self.__dict__["inner"], name)

    @property
    def simulated_time_s(self) -> float:
        return self.inner.simulated_time_s

    @simulated_time_s.setter
    def simulated_time_s(self, value: float) -> None:
        self.inner.simulated_time_s = value

    def __enter__(self) -> "RetryingDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def read(self, offset: int, nbytes: int) -> bytes:
        attempt = 0
        while True:
            try:
                return self.inner.read(offset, nbytes)
            except (TransientReadError, CorruptPageError):
                c = self.counters
                c.read_faults += 1
                attempt += 1
                if attempt >= self.policy.max_attempts:
                    raise
                c.read_retries += 1
                backoff = self.policy.backoff_s(attempt - 1)
                c.retry_backoff_s += backoff
                self.simulated_time_s += backoff

    def write(self, offset: int, data: bytes) -> int:
        return self.inner.write(offset, data)

    def append(self, data: bytes) -> int:
        offset = self.size()
        self.write(offset, data)
        return offset


def make_robust_disk(disk, plan: Optional[FaultPlan] = None,
                     checksums: bool = False,
                     page_bytes: int = DEFAULT_PAGE_BYTES,
                     retry: Optional[RetryPolicy] = None,
                     sidecar: bool = True):
    """Compose the standard robustness stack over ``disk``.

    Order (bottom-up): fault injection, then checksums, then retries —
    so injected corruption is caught by the checksum layer and surfaced
    to the retry layer, which re-reads through the (possibly again
    faulty) path below.  Every layer is optional; with all arguments at
    their defaults the disk is returned unchanged.
    """
    wrapped = disk
    if plan is not None:
        wrapped = FaultyDisk(wrapped, plan)
    if checksums:
        wrapped = ChecksummedDisk(wrapped, page_bytes=page_bytes,
                                  sidecar=sidecar)
    if retry is not None:
        wrapped = RetryingDisk(wrapped, retry)
    return wrapped
