"""Buffer management: an LRU pool of loaded pages with pinning.

Used in two ways:

* the EGO scheduler (Figure 4 of the paper) manages frames explicitly —
  it discards buffers whose ε-interval has passed, loads units in gallop
  mode, and pins a window of units in crabstep mode;
* the index-based competitor joins use the pool transparently via
  :meth:`BufferPool.get`, relying on LRU replacement, which is exactly the
  configuration under which the paper demonstrates gallop-mode thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, List, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class BufferFullError(RuntimeError):
    """Raised when every frame is pinned and a new page must be loaded."""


@dataclass
class Frame(Generic[K, V]):
    """One buffer frame holding a loaded page."""

    key: K
    value: V
    pinned: bool = False
    last_used: int = 0


@dataclass
class BufferStats:
    """Hit/miss accounting for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __add__(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(hits=self.hits + other.hits,
                           misses=self.misses + other.misses,
                           evictions=self.evictions + other.evictions)


class BufferPool(Generic[K, V]):
    """Fixed-capacity page buffer with LRU replacement and pinning.

    Parameters
    ----------
    capacity:
        Maximum number of resident frames.
    loader:
        Callback invoked on a miss to fetch the page for a key (it is the
        loader that touches the disk, so misses are what cost I/O).

    The pool optionally reports pin-lifecycle events to an ``observer``
    (any object with ``on_pin(key)``, ``on_unpin(key)``,
    ``on_discard(key, pinned)`` and ``on_evict(key, pinned)``); the
    verification subsystem uses this to assert pin/unpin balance and
    that no pinned frame is ever dropped
    (:class:`repro.verify.invariants.InvariantMonitor`).

    ``metrics`` is an optional bundle of counter handles (attributes
    ``hits``, ``misses``, ``evictions``, ``pins``, ``unpins``, each with
    an ``inc()`` method) mirroring the pool events into a metrics
    registry; ``None`` (the default) keeps the storage layer entirely
    free of observability work.  The scheduler builds the bundle — see
    ``_BufferObs`` in :mod:`repro.core.scheduler`.
    """

    def __init__(self, capacity: int, loader: Callable[[K], V],
                 observer=None, metrics=None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.loader = loader
        self.observer = observer
        self.metrics = metrics
        self.stats = BufferStats()
        self._frames: Dict[K, Frame[K, V]] = {}
        self._clock = 0

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, key: K) -> bool:
        return key in self._frames

    @property
    def resident_keys(self) -> List[K]:
        """Keys currently buffered, oldest use first."""
        return [f.key for f in
                sorted(self._frames.values(), key=lambda f: f.last_used)]

    @property
    def frames(self) -> List[Frame[K, V]]:
        """Resident frames, oldest use first."""
        return sorted(self._frames.values(), key=lambda f: f.last_used)

    def pinned_frames(self) -> List[Frame[K, V]]:
        """Resident frames that are pinned, oldest use first."""
        return [f for f in self.frames if f.pinned]

    def free_frames(self) -> int:
        """Number of frames that could be filled without evicting a pin."""
        unpinned = sum(1 for f in self._frames.values() if not f.pinned)
        return (self.capacity - len(self._frames)) + unpinned

    def has_empty_frame(self) -> bool:
        """True if a page can be loaded without evicting anything."""
        return len(self._frames) < self.capacity

    # -- core operations ------------------------------------------------------

    def _touch(self, frame: Frame[K, V]) -> None:
        self._clock += 1
        frame.last_used = self._clock

    def _pin_frame(self, frame: Frame[K, V]) -> None:
        if not frame.pinned:
            frame.pinned = True
            if self.observer is not None:
                self.observer.on_pin(frame.key)
            if self.metrics is not None:
                self.metrics.pins.inc()

    def _evict_one(self) -> None:
        victims = [f for f in self._frames.values() if not f.pinned]
        if not victims:
            raise BufferFullError(
                "all frames are pinned; cannot load a new page")
        victim = min(victims, key=lambda f: f.last_used)
        del self._frames[victim.key]
        self.stats.evictions += 1
        if self.observer is not None:
            self.observer.on_evict(victim.key, victim.pinned)
        if self.metrics is not None:
            self.metrics.evictions.inc()

    def set_capacity(self, capacity: int) -> int:
        """Resize the pool, evicting unpinned LRU frames as needed.

        Used for graceful degradation under memory/IO pressure: the EGO
        scheduler shrinks its buffer instead of aborting.  The capacity
        cannot drop below the number of currently pinned frames (or 1);
        returns the capacity actually set.
        """
        pinned = sum(1 for f in self._frames.values() if f.pinned)
        target = max(1, capacity, pinned)
        while len(self._frames) > target:
            self._evict_one()
        self.capacity = target
        return target

    def get(self, key: K, pin: bool = False) -> V:
        """Return the page for ``key``, loading (and possibly evicting) on miss."""
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            if self.metrics is not None:
                self.metrics.hits.inc()
            self._touch(frame)
            if pin:
                self._pin_frame(frame)
            return frame.value
        self.stats.misses += 1
        if self.metrics is not None:
            self.metrics.misses.inc()
        if len(self._frames) >= self.capacity:
            self._evict_one()
        value = self.loader(key)
        frame = Frame(key=key, value=value)
        self._touch(frame)
        self._frames[key] = frame
        if pin:
            self._pin_frame(frame)
        return value

    def peek(self, key: K) -> Frame[K, V]:
        """Return the resident frame for ``key`` without touching LRU state."""
        return self._frames[key]

    def pin(self, key: K) -> None:
        """Pin a resident page so it cannot be evicted."""
        self._pin_frame(self._frames[key])

    def unpin(self, key: K) -> None:
        """Remove the pin from a resident page."""
        frame = self._frames[key]
        if frame.pinned:
            frame.pinned = False
            if self.observer is not None:
                self.observer.on_unpin(key)
            if self.metrics is not None:
                self.metrics.unpins.inc()

    def unpin_all(self) -> None:
        """Remove the pins from every resident page."""
        for frame in self._frames.values():
            if frame.pinned:
                frame.pinned = False
                if self.observer is not None:
                    self.observer.on_unpin(frame.key)
                if self.metrics is not None:
                    self.metrics.unpins.inc()

    def discard(self, key: K) -> None:
        """Drop a resident page (no-op if absent); pins do not protect it."""
        frame = self._frames.pop(key, None)
        if frame is not None and self.observer is not None:
            self.observer.on_discard(key, frame.pinned)

    def clear(self) -> None:
        """Drop every resident page."""
        self._frames.clear()
