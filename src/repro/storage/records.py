"""Fixed-width binary codec for point records.

A point record stores a 64-bit signed point identifier followed by ``d``
IEEE-754 doubles (the coordinates), all little-endian:

    record := int64 id | float64 coord[0] | ... | float64 coord[d-1]

Records are fixed width (``8 * (d + 1)`` bytes), so a byte offset maps to
a record index by integer division and I/O units of an arbitrary byte size
can be used — a unit then holds *fragments* of records at its boundaries,
exactly the situation Section 3.2 of the paper describes for unbuffered
raw-device I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

ID_BYTES = 8
COORD_BYTES = 8


def record_size(dimensions: int) -> int:
    """Bytes occupied by one record of a ``dimensions``-dimensional point."""
    if dimensions <= 0:
        raise ValueError(f"dimensions must be positive, got {dimensions}")
    return ID_BYTES + COORD_BYTES * dimensions


@dataclass(frozen=True)
class RecordCodec:
    """Encoder/decoder between (ids, points) arrays and record bytes."""

    dimensions: int

    def __post_init__(self) -> None:
        if self.dimensions <= 0:
            raise ValueError(
                f"dimensions must be positive, got {self.dimensions}")

    @property
    def record_bytes(self) -> int:
        """Width of one encoded record in bytes."""
        return record_size(self.dimensions)

    def encode(self, ids: np.ndarray, points: np.ndarray) -> bytes:
        """Encode parallel arrays of ids ``(n,)`` and points ``(n, d)``."""
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dimensions:
            raise ValueError(
                f"points must have shape (n, {self.dimensions}), "
                f"got {points.shape}")
        if ids.shape != (points.shape[0],):
            raise ValueError(
                f"ids shape {ids.shape} does not match {points.shape[0]} points")
        buf = np.empty((len(ids), self.dimensions + 1), dtype="<f8")
        # Store the id bit pattern exactly, not a float conversion.
        buf[:, 0:1].view("<i8")[:, 0] = ids
        buf[:, 1:] = points
        return buf.tobytes()

    def decode(self, data: bytes) -> Tuple[np.ndarray, np.ndarray]:
        """Decode record bytes into ``(ids, points)`` arrays.

        ``data`` must be a whole number of records; use
        :meth:`split_fragments` first when decoding raw I/O-unit bytes.
        """
        rec = self.record_bytes
        if len(data) % rec != 0:
            raise ValueError(
                f"buffer of {len(data)} bytes is not a whole number of "
                f"{rec}-byte records")
        n = len(data) // rec
        if n == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty((0, self.dimensions), dtype=np.float64))
        raw = np.frombuffer(data, dtype="<f8").reshape(n, self.dimensions + 1)
        ids = raw[:, 0:1].copy().view("<i8")[:, 0]
        points = raw[:, 1:].astype(np.float64)
        return ids, points

    def split_fragments(self, start_offset: int,
                        data_len: int) -> Tuple[int, int]:
        """Locate the whole-record region of a byte window.

        For a window of ``data_len`` bytes starting at file data offset
        ``start_offset``, return ``(head, tail)``: ``head`` bytes at the
        front belong to a record that started in the previous window and
        ``tail`` bytes at the back belong to a record that finishes in the
        next one.  ``data[head:data_len - tail]`` decodes cleanly.
        """
        rec = self.record_bytes
        head = (-start_offset) % rec
        if head >= data_len:
            return data_len, 0
        tail = (data_len - head) % rec
        return head, tail
