"""Deterministic fault injection for the simulated storage stack.

Production-scale similarity joins run for hours over external storage, so
transient read errors, torn writes, silent corruption and outright crashes
are inputs the pipeline must expect, not exceptional conditions.  This
module makes every one of those failure modes *reproducible*: a
:class:`FaultPlan` is seeded and consumed in operation order, so a given
plan injects exactly the same faults at exactly the same operations on
every run — which is what lets tests and benchmarks assert recovery
behaviour instead of merely hoping for it.

The plan drives a :class:`FaultyDisk` wrapper that sits directly above a
:class:`~repro.storage.disk.SimulatedDisk`.  Detection and recovery live
one layer up, in :mod:`repro.storage.integrity` (checksums and retries)
and :mod:`repro.storage.journal` (checkpoint/resume); the usual stack is::

    RetryingDisk(ChecksummedDisk(FaultyDisk(SimulatedDisk, plan)))

Fault kinds
-----------

* **transient read errors** — the read raises :class:`TransientReadError`;
  a re-issued read normally succeeds (each attempt is sampled
  independently), modelling bus glitches and recoverable device errors;
* **bit-flip corruption** — the read succeeds but one byte of the
  returned data is flipped, modelling silent media corruption (only a
  checksum layer can catch this);
* **torn writes** — a write persists only a prefix of its payload while
  reporting full success, modelling a power cut mid-sector;
* **crash points** — at a scheduled global operation index the device
  raises :class:`SimulatedCrash`; a crash during a write optionally tears
  it first, so the on-disk state is exactly what a real interrupted write
  leaves behind;
* **pressure windows** — operation-index ranges during which the device
  reports memory/IO pressure via :attr:`FaultyDisk.under_pressure`; the
  EGO scheduler reacts by shrinking its buffer instead of aborting.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple


def stable_fraction(seed: int, *parts) -> float:
    """A deterministic value in [0, 1) from a seed and arbitrary parts.

    Unlike a stateful RNG, the value depends only on its inputs — not on
    how many decisions came before — which is what lets the parent
    process, every worker process, and a resumed run all agree on the
    same fault decision for the same task.
    """
    text = ":".join(str(p) for p in (seed,) + parts)
    return zlib.crc32(text.encode("utf-8")) / 2.0 ** 32


class FaultInjectionError(IOError):
    """Base class of every error raised by the fault layer."""


class TransientReadError(FaultInjectionError):
    """A read failed transiently; re-issuing it normally succeeds."""


class InjectedTaskError(FaultInjectionError):
    """A unit-pair join task failed by injection (worker fault plan)."""


class SimulatedCrash(RuntimeError):
    """The process 'crashed' at a scheduled operation.

    Deliberately *not* an :class:`IOError`: retry layers must never
    swallow a crash — it has to escape the whole pipeline, exactly like
    a real process death.
    """

    def __init__(self, op_index: int) -> None:
        super().__init__(f"simulated crash at storage operation {op_index}")
        self.op_index = op_index


@dataclass
class FaultLog:
    """Counts of the faults a plan actually injected."""

    transient_read_errors: int = 0
    corrupted_reads: int = 0
    torn_writes: int = 0
    crashes: int = 0

    @property
    def total(self) -> int:
        """Total number of injected faults of any kind."""
        return (self.transient_read_errors + self.corrupted_reads
                + self.torn_writes + self.crashes)

    def reset(self) -> None:
        """Zero every counter in place."""
        self.transient_read_errors = 0
        self.corrupted_reads = 0
        self.torn_writes = 0
        self.crashes = 0


class FaultPlan:
    """A seeded, deterministic schedule of storage faults.

    One plan instance is shared by every :class:`FaultyDisk` of a
    pipeline, so the operation index is global across devices and a crash
    point identifies one specific operation of the whole run.

    Parameters
    ----------
    seed:
        Seed of the private RNG; two plans with equal parameters inject
        identical faults.
    read_error_rate:
        Probability that a read attempt raises :class:`TransientReadError`.
    corrupt_rate:
        Probability that a successful read has one byte bit-flipped.
    torn_write_rate:
        Probability that a write silently persists only a prefix.
    crash_ops:
        Global operation indices (0-based, reads and writes both count) at
        which :class:`SimulatedCrash` is raised.  Each fires at most once.
    tear_on_crash:
        When a crash lands on a write, persist a random prefix first
        (the realistic torn state a power cut leaves).
    pressure_ranges:
        ``(start, end)`` half-open operation-index ranges during which
        :meth:`under_pressure` reports ``True``.
    """

    def __init__(self, seed: int = 0,
                 read_error_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 torn_write_rate: float = 0.0,
                 crash_ops: Iterable[int] = (),
                 tear_on_crash: bool = True,
                 pressure_ranges: Sequence[Tuple[int, int]] = ()) -> None:
        for name, rate in (("read_error_rate", read_error_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("torn_write_rate", torn_write_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.read_error_rate = read_error_rate
        self.corrupt_rate = corrupt_rate
        self.torn_write_rate = torn_write_rate
        self.crash_ops = set(int(op) for op in crash_ops)
        self.tear_on_crash = tear_on_crash
        self.pressure_ranges = [(int(a), int(b)) for a, b in pressure_ranges]
        self.injected = FaultLog()
        self._rng = random.Random(seed)
        self._op = 0
        self._pressure_base = 0

    # -- derived plans ------------------------------------------------------

    def without_crashes(self) -> "FaultPlan":
        """A fresh copy of this plan with every crash point removed.

        This is the plan a resumed run uses: the same background fault
        rates keep applying, but the scheduled crash already happened.
        """
        return FaultPlan(seed=self.seed,
                         read_error_rate=self.read_error_rate,
                         corrupt_rate=self.corrupt_rate,
                         torn_write_rate=self.torn_write_rate,
                         crash_ops=(),
                         tear_on_crash=self.tear_on_crash,
                         pressure_ranges=self.pressure_ranges)

    # -- state --------------------------------------------------------------

    @property
    def op_index(self) -> int:
        """Number of operations the plan has adjudicated so far."""
        return self._op

    def under_pressure(self) -> bool:
        """True while the current operation index is in a pressure window.

        The index is taken relative to the last
        :meth:`begin_pressure_scope` call, so pressure windows describe
        positions *within a run* rather than absolute positions in the
        plan's lifetime — without the re-basing, a plan reused for
        back-to-back runs (or shared across concurrent per-shard pools)
        would leak one run's window into the next.
        """
        op = self._op - self._pressure_base
        return any(a <= op < b for a, b in self.pressure_ranges)

    def begin_pressure_scope(self) -> None:
        """Re-base the pressure windows at the current operation index.

        Called at run entry (see :class:`~repro.storage.stats.IOScope`),
        the same pattern that run-scopes the I/O counters: each run sees
        the plan's pressure ranges relative to its own first operation.
        """
        self._pressure_base = self._op

    def _next_op(self) -> int:
        op = self._op
        self._op += 1
        if op in self.crash_ops:
            self.crash_ops.discard(op)
            self.injected.crashes += 1
            raise SimulatedCrash(op)
        return op

    # -- hooks used by FaultyDisk -------------------------------------------

    def on_read(self) -> None:
        """Adjudicate one read attempt; may raise crash or transient error."""
        self._next_op()
        if self.read_error_rate and self._rng.random() < self.read_error_rate:
            self.injected.transient_read_errors += 1
            raise TransientReadError(
                f"injected transient read error at operation {self._op - 1}")

    def mangle_read(self, data: bytes) -> bytes:
        """Possibly flip one byte of read data (silent corruption)."""
        if not data or not self.corrupt_rate:
            return data
        if self._rng.random() >= self.corrupt_rate:
            return data
        self.injected.corrupted_reads += 1
        pos = self._rng.randrange(len(data))
        bit = 1 << self._rng.randrange(8)
        mangled = bytearray(data)
        mangled[pos] ^= bit
        return bytes(mangled)

    def on_write(self, data: bytes) -> Tuple[bytes, Optional[SimulatedCrash]]:
        """Adjudicate one write.

        Returns ``(payload, crash)``: the possibly-torn payload to persist
        and, if the operation is a crash point, the crash to raise *after*
        persisting it.
        """
        try:
            self._next_op()
        except SimulatedCrash as crash:
            if self.tear_on_crash and len(data) > 1:
                self.injected.torn_writes += 1
                return data[:self._rng.randrange(1, len(data))], crash
            return b"", crash
        if (self.torn_write_rate and len(data) > 1
                and self._rng.random() < self.torn_write_rate):
            self.injected.torn_writes += 1
            return data[:self._rng.randrange(1, len(data))], None
        return data, None


class FaultyDisk:
    """A disk wrapper that injects the faults of a :class:`FaultPlan`.

    Exposes the full :class:`~repro.storage.disk.SimulatedDisk` interface;
    accounting (counters, simulated clock) stays on the wrapped disk so
    the whole wrapper stack shares one set of books.  A torn write still
    reports the full requested length — the tear is *silent*, exactly the
    property that makes checksums necessary.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    # -- delegated state ----------------------------------------------------

    @property
    def counters(self):
        return self.inner.counters

    @property
    def simulated_time_s(self) -> float:
        return self.inner.simulated_time_s

    @simulated_time_s.setter
    def simulated_time_s(self, value: float) -> None:
        self.inner.simulated_time_s = value

    @property
    def model(self):
        return self.inner.model

    @property
    def path(self) -> str:
        return self.inner.path

    @property
    def under_pressure(self) -> bool:
        """True while the plan's current op index is in a pressure window."""
        return self.plan.under_pressure()

    def __enter__(self) -> "FaultyDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.inner.close()

    def size(self) -> int:
        return self.inner.size()

    def truncate(self, nbytes: int) -> None:
        self.inner.truncate(nbytes)

    def reset_position(self) -> None:
        self.inner.reset_position()

    def reset_accounting(self) -> None:
        self.inner.reset_accounting()

    def begin_pressure_scope(self) -> None:
        """Re-base the plan's pressure windows at the current op index."""
        self.plan.begin_pressure_scope()

    # -- faulting data path -------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        self.plan.on_read()
        return self.plan.mangle_read(self.inner.read(offset, nbytes))

    def write(self, offset: int, data: bytes) -> int:
        payload, crash = self.plan.on_write(data)
        if payload:
            self.inner.write(offset, payload)
        if crash is not None:
            raise crash
        # A torn write is silent: report the full requested length.
        return len(data)

    def append(self, data: bytes) -> int:
        offset = self.size()
        self.write(offset, data)
        return offset


# -- process-level worker faults --------------------------------------------


@dataclass
class WorkerFaultLog:
    """Counts of the worker faults a plan's supervisor actually observed.

    The log lives in the *parent* process: a crashed worker cannot report
    its own death, so the supervisor records each fault as it detects it
    (broken pool, merge-deadline timeout, digest mismatch, task error).
    """

    crashes: int = 0
    stalls: int = 0
    corrupted_results: int = 0
    task_errors: int = 0

    @property
    def total(self) -> int:
        """Total number of observed worker faults of any kind."""
        return (self.crashes + self.stalls + self.corrupted_results
                + self.task_errors)


class WorkerFaultPlan:
    """A seeded, deterministic schedule of process-level task faults.

    Where :class:`FaultPlan` injects faults into the storage data path,
    this plan injects them into the *execution* of unit-pair join tasks
    on the worker pool (see
    :class:`~repro.core.supervisor.SupervisedUnitJoiner`).  Decisions are
    keyed by the unit-pair key ``(a, b)`` and the attempt number, and are
    pure functions of the plan parameters (:func:`stable_fraction`, no
    RNG state) — so the parent, every worker process, and a resumed run
    all adjudicate identically, regardless of scheduling order.

    Fault kinds (precedence ``crash > stall > corrupt > error`` when one
    key matches several):

    * **crash** — the worker process exits hard (``os._exit``), breaking
      the whole pool: every pending task fails and the supervisor must
      recycle the executor;
    * **stall** — the worker sleeps ``stall_seconds`` before computing,
      modelling a hung worker; only a per-task deadline can catch it;
    * **corrupt** — the task computes correctly but one byte of the
      returned pair batch is flipped after the result digest is taken,
      modelling IPC/serialisation corruption (detected by the digest);
    * **error** — the task raises :class:`InjectedTaskError`, modelling a
      transient in-process failure (OOM kill handler, lost future).

    Parameters
    ----------
    seed:
        Seed folded into every decision hash.
    crash_pairs, stall_pairs, corrupt_pairs, error_pairs:
        Explicit unit-pair keys ``(a, b)`` to fault (order-normalised).
    crash_rate, stall_rate, corrupt_rate, error_rate:
        Per-pair probabilities, adjudicated by stable hash of
        ``(seed, kind, key)`` — independent of execution order.
    stall_seconds:
        How long a stalled worker sleeps.  Make this much larger than
        the supervisor's task deadline or the stall may complete
        undetected.
    max_attempt:
        Faults fire only while ``attempt <= max_attempt`` (default 0:
        first attempt only, so one retry recovers).  ``None`` makes the
        fault permanent — it fires on *every* attempt, including the
        quarantine's inline retry, which is how a poisoned task (a data
        bug rather than an environment fault) is modelled.
    """

    KINDS: Tuple[str, ...] = ("crash", "stall", "corrupt", "error")

    def __init__(self, seed: int = 0,
                 crash_pairs: Iterable[Tuple[int, int]] = (),
                 stall_pairs: Iterable[Tuple[int, int]] = (),
                 corrupt_pairs: Iterable[Tuple[int, int]] = (),
                 error_pairs: Iterable[Tuple[int, int]] = (),
                 crash_rate: float = 0.0,
                 stall_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 error_rate: float = 0.0,
                 stall_seconds: float = 30.0,
                 max_attempt: Optional[int] = 0) -> None:
        self.seed = int(seed)
        self.pairs = {
            "crash": self._normalise(crash_pairs),
            "stall": self._normalise(stall_pairs),
            "corrupt": self._normalise(corrupt_pairs),
            "error": self._normalise(error_pairs),
        }
        self.rates = {"crash": crash_rate, "stall": stall_rate,
                      "corrupt": corrupt_rate, "error": error_rate}
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{kind}_rate must be in [0, 1], got {rate}")
        if stall_seconds <= 0.0:
            raise ValueError(
                f"stall_seconds must be positive, got {stall_seconds}")
        self.stall_seconds = float(stall_seconds)
        if max_attempt is not None and max_attempt < 0:
            raise ValueError(
                f"max_attempt must be >= 0 or None, got {max_attempt}")
        self.max_attempt = max_attempt
        self.injected = WorkerFaultLog()

    @staticmethod
    def _normalise(pairs: Iterable[Tuple[int, int]]) -> frozenset:
        return frozenset((min(int(a), int(b)), max(int(a), int(b)))
                         for a, b in pairs)

    @property
    def any_faults(self) -> bool:
        """True when the plan can inject at least one fault."""
        return (any(self.pairs.values())
                or any(rate > 0.0 for rate in self.rates.values()))

    def decide(self, key: Tuple[int, int],
               attempt: int) -> Optional[str]:
        """The fault kind to inject for ``key`` at ``attempt``, or None.

        Pure function of the plan parameters: callable anywhere (parent,
        worker, resumed run) with the same answer.
        """
        if self.max_attempt is not None and attempt > self.max_attempt:
            return None
        key = (min(int(key[0]), int(key[1])),
               max(int(key[0]), int(key[1])))
        for kind in self.KINDS:
            if key in self.pairs[kind]:
                return kind
            rate = self.rates[kind]
            if rate and stable_fraction(self.seed, kind, *key) < rate:
                return kind
        return None

    def record(self, kind: str) -> None:
        """Count one observed fault (called by the supervising parent)."""
        attr = {"crash": "crashes", "stall": "stalls",
                "corrupt": "corrupted_results",
                "error": "task_errors"}[kind]
        setattr(self.injected, attr, getattr(self.injected, attr) + 1)
