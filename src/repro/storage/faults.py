"""Deterministic fault injection for the simulated storage stack.

Production-scale similarity joins run for hours over external storage, so
transient read errors, torn writes, silent corruption and outright crashes
are inputs the pipeline must expect, not exceptional conditions.  This
module makes every one of those failure modes *reproducible*: a
:class:`FaultPlan` is seeded and consumed in operation order, so a given
plan injects exactly the same faults at exactly the same operations on
every run — which is what lets tests and benchmarks assert recovery
behaviour instead of merely hoping for it.

The plan drives a :class:`FaultyDisk` wrapper that sits directly above a
:class:`~repro.storage.disk.SimulatedDisk`.  Detection and recovery live
one layer up, in :mod:`repro.storage.integrity` (checksums and retries)
and :mod:`repro.storage.journal` (checkpoint/resume); the usual stack is::

    RetryingDisk(ChecksummedDisk(FaultyDisk(SimulatedDisk, plan)))

Fault kinds
-----------

* **transient read errors** — the read raises :class:`TransientReadError`;
  a re-issued read normally succeeds (each attempt is sampled
  independently), modelling bus glitches and recoverable device errors;
* **bit-flip corruption** — the read succeeds but one byte of the
  returned data is flipped, modelling silent media corruption (only a
  checksum layer can catch this);
* **torn writes** — a write persists only a prefix of its payload while
  reporting full success, modelling a power cut mid-sector;
* **crash points** — at a scheduled global operation index the device
  raises :class:`SimulatedCrash`; a crash during a write optionally tears
  it first, so the on-disk state is exactly what a real interrupted write
  leaves behind;
* **pressure windows** — operation-index ranges during which the device
  reports memory/IO pressure via :attr:`FaultyDisk.under_pressure`; the
  EGO scheduler reacts by shrinking its buffer instead of aborting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple


class FaultInjectionError(IOError):
    """Base class of every error raised by the fault layer."""


class TransientReadError(FaultInjectionError):
    """A read failed transiently; re-issuing it normally succeeds."""


class SimulatedCrash(RuntimeError):
    """The process 'crashed' at a scheduled operation.

    Deliberately *not* an :class:`IOError`: retry layers must never
    swallow a crash — it has to escape the whole pipeline, exactly like
    a real process death.
    """

    def __init__(self, op_index: int) -> None:
        super().__init__(f"simulated crash at storage operation {op_index}")
        self.op_index = op_index


@dataclass
class FaultLog:
    """Counts of the faults a plan actually injected."""

    transient_read_errors: int = 0
    corrupted_reads: int = 0
    torn_writes: int = 0
    crashes: int = 0

    @property
    def total(self) -> int:
        """Total number of injected faults of any kind."""
        return (self.transient_read_errors + self.corrupted_reads
                + self.torn_writes + self.crashes)

    def reset(self) -> None:
        """Zero every counter in place."""
        self.transient_read_errors = 0
        self.corrupted_reads = 0
        self.torn_writes = 0
        self.crashes = 0


class FaultPlan:
    """A seeded, deterministic schedule of storage faults.

    One plan instance is shared by every :class:`FaultyDisk` of a
    pipeline, so the operation index is global across devices and a crash
    point identifies one specific operation of the whole run.

    Parameters
    ----------
    seed:
        Seed of the private RNG; two plans with equal parameters inject
        identical faults.
    read_error_rate:
        Probability that a read attempt raises :class:`TransientReadError`.
    corrupt_rate:
        Probability that a successful read has one byte bit-flipped.
    torn_write_rate:
        Probability that a write silently persists only a prefix.
    crash_ops:
        Global operation indices (0-based, reads and writes both count) at
        which :class:`SimulatedCrash` is raised.  Each fires at most once.
    tear_on_crash:
        When a crash lands on a write, persist a random prefix first
        (the realistic torn state a power cut leaves).
    pressure_ranges:
        ``(start, end)`` half-open operation-index ranges during which
        :meth:`under_pressure` reports ``True``.
    """

    def __init__(self, seed: int = 0,
                 read_error_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 torn_write_rate: float = 0.0,
                 crash_ops: Iterable[int] = (),
                 tear_on_crash: bool = True,
                 pressure_ranges: Sequence[Tuple[int, int]] = ()) -> None:
        for name, rate in (("read_error_rate", read_error_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("torn_write_rate", torn_write_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.read_error_rate = read_error_rate
        self.corrupt_rate = corrupt_rate
        self.torn_write_rate = torn_write_rate
        self.crash_ops = set(int(op) for op in crash_ops)
        self.tear_on_crash = tear_on_crash
        self.pressure_ranges = [(int(a), int(b)) for a, b in pressure_ranges]
        self.injected = FaultLog()
        self._rng = random.Random(seed)
        self._op = 0

    # -- derived plans ------------------------------------------------------

    def without_crashes(self) -> "FaultPlan":
        """A fresh copy of this plan with every crash point removed.

        This is the plan a resumed run uses: the same background fault
        rates keep applying, but the scheduled crash already happened.
        """
        return FaultPlan(seed=self.seed,
                         read_error_rate=self.read_error_rate,
                         corrupt_rate=self.corrupt_rate,
                         torn_write_rate=self.torn_write_rate,
                         crash_ops=(),
                         tear_on_crash=self.tear_on_crash,
                         pressure_ranges=self.pressure_ranges)

    # -- state --------------------------------------------------------------

    @property
    def op_index(self) -> int:
        """Number of operations the plan has adjudicated so far."""
        return self._op

    def under_pressure(self) -> bool:
        """True while the current operation index is in a pressure window."""
        return any(a <= self._op < b for a, b in self.pressure_ranges)

    def _next_op(self) -> int:
        op = self._op
        self._op += 1
        if op in self.crash_ops:
            self.crash_ops.discard(op)
            self.injected.crashes += 1
            raise SimulatedCrash(op)
        return op

    # -- hooks used by FaultyDisk -------------------------------------------

    def on_read(self) -> None:
        """Adjudicate one read attempt; may raise crash or transient error."""
        self._next_op()
        if self.read_error_rate and self._rng.random() < self.read_error_rate:
            self.injected.transient_read_errors += 1
            raise TransientReadError(
                f"injected transient read error at operation {self._op - 1}")

    def mangle_read(self, data: bytes) -> bytes:
        """Possibly flip one byte of read data (silent corruption)."""
        if not data or not self.corrupt_rate:
            return data
        if self._rng.random() >= self.corrupt_rate:
            return data
        self.injected.corrupted_reads += 1
        pos = self._rng.randrange(len(data))
        bit = 1 << self._rng.randrange(8)
        mangled = bytearray(data)
        mangled[pos] ^= bit
        return bytes(mangled)

    def on_write(self, data: bytes) -> Tuple[bytes, Optional[SimulatedCrash]]:
        """Adjudicate one write.

        Returns ``(payload, crash)``: the possibly-torn payload to persist
        and, if the operation is a crash point, the crash to raise *after*
        persisting it.
        """
        try:
            self._next_op()
        except SimulatedCrash as crash:
            if self.tear_on_crash and len(data) > 1:
                self.injected.torn_writes += 1
                return data[:self._rng.randrange(1, len(data))], crash
            return b"", crash
        if (self.torn_write_rate and len(data) > 1
                and self._rng.random() < self.torn_write_rate):
            self.injected.torn_writes += 1
            return data[:self._rng.randrange(1, len(data))], None
        return data, None


class FaultyDisk:
    """A disk wrapper that injects the faults of a :class:`FaultPlan`.

    Exposes the full :class:`~repro.storage.disk.SimulatedDisk` interface;
    accounting (counters, simulated clock) stays on the wrapped disk so
    the whole wrapper stack shares one set of books.  A torn write still
    reports the full requested length — the tear is *silent*, exactly the
    property that makes checksums necessary.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    # -- delegated state ----------------------------------------------------

    @property
    def counters(self):
        return self.inner.counters

    @property
    def simulated_time_s(self) -> float:
        return self.inner.simulated_time_s

    @simulated_time_s.setter
    def simulated_time_s(self, value: float) -> None:
        self.inner.simulated_time_s = value

    @property
    def model(self):
        return self.inner.model

    @property
    def path(self) -> str:
        return self.inner.path

    @property
    def under_pressure(self) -> bool:
        """True while the plan's current op index is in a pressure window."""
        return self.plan.under_pressure()

    def __enter__(self) -> "FaultyDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.inner.close()

    def size(self) -> int:
        return self.inner.size()

    def truncate(self, nbytes: int) -> None:
        self.inner.truncate(nbytes)

    def reset_position(self) -> None:
        self.inner.reset_position()

    def reset_accounting(self) -> None:
        self.inner.reset_accounting()

    # -- faulting data path -------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        self.plan.on_read()
        return self.plan.mangle_read(self.inner.read(offset, nbytes))

    def write(self, offset: int, data: bytes) -> int:
        payload, crash = self.plan.on_write(data)
        if payload:
            self.inner.write(offset, payload)
        if crash is not None:
            raise crash
        # A torn write is silent: report the full requested length.
        return len(data)

    def append(self, data: bytes) -> int:
        offset = self.size()
        self.write(offset, data)
        return offset
