"""Storage substrate: simulated disk, record files, I/O units, buffers."""

from .buffer import BufferFullError, BufferPool, BufferStats, Frame
from .disk import DiskModel, SimulatedDisk
from .pagefile import (HEADER_SIZE, PointFile, SequentialReader,
                       SequentialWriter)
from .pairfile import PairFile, SpillingCollector
from .records import RecordCodec, record_size
from .stats import CPUCounters, IOCounters, OperationStats

__all__ = [
    "BufferFullError",
    "BufferPool",
    "BufferStats",
    "CPUCounters",
    "DiskModel",
    "Frame",
    "HEADER_SIZE",
    "IOCounters",
    "OperationStats",
    "PairFile",
    "SpillingCollector",
    "PointFile",
    "RecordCodec",
    "SequentialReader",
    "SequentialWriter",
    "SimulatedDisk",
    "record_size",
]
