"""Storage substrate: simulated disk, record files, I/O units, buffers."""

from .buffer import BufferFullError, BufferPool, BufferStats, Frame
from .disk import DiskModel, SimulatedDisk
from .faults import (FaultInjectionError, FaultLog, FaultPlan, FaultyDisk,
                     SimulatedCrash, TransientReadError)
from .integrity import (ChecksummedDisk, CorruptPageError, RetryingDisk,
                        RetryPolicy, make_robust_disk)
from .journal import Journal
from .pagefile import (HEADER_SIZE, PointFile, SequentialReader,
                       SequentialWriter)
from .pairfile import PairFile, SpillingCollector
from .records import RecordCodec, record_size
from .stats import CPUCounters, IOCounters, OperationStats

__all__ = [
    "BufferFullError",
    "BufferPool",
    "BufferStats",
    "CPUCounters",
    "ChecksummedDisk",
    "CorruptPageError",
    "DiskModel",
    "FaultInjectionError",
    "FaultLog",
    "FaultPlan",
    "FaultyDisk",
    "Frame",
    "HEADER_SIZE",
    "IOCounters",
    "Journal",
    "OperationStats",
    "PairFile",
    "RetryPolicy",
    "RetryingDisk",
    "SimulatedCrash",
    "SpillingCollector",
    "PointFile",
    "RecordCodec",
    "SequentialReader",
    "SequentialWriter",
    "SimulatedDisk",
    "TransientReadError",
    "make_robust_disk",
]
