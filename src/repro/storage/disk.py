"""Simulated disk device over real files.

The paper ran on a Seagate ST310212A (about 9 MB/s sustained transfer,
8.9 ms average read access, 5.6 ms average latency) with unbuffered I/O on
raw devices.  This module substitutes that hardware with a byte-addressed
device backed by an ordinary file: every read and write goes through
:class:`SimulatedDisk`, which classifies it as *sequential* (it starts
exactly where the previous access on the same device ended) or *random*
and charges simulated time accordingly.

The substitution is documented in DESIGN.md: the paper's experimental
claims are about access schedules, so exact access counting plus the
published device constants reproduces the relative I/O behaviour without
a physical 1-GB testbed.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Optional

from .stats import IOCounters


@dataclass(frozen=True)
class DiskModel:
    """Timing constants of the modelled disk device.

    The defaults are the figures the paper reports for its testbed disk.
    ``avg_access_time_s`` is the full random positioning cost (seek plus
    rotational latency); sequential accesses are charged transfer time
    only, which is how a sustained scan reaches ``transfer_rate_bytes``.
    """

    transfer_rate_bytes: float = 9.0 * 1024 * 1024
    avg_access_time_s: float = 8.9e-3
    avg_latency_s: float = 5.6e-3

    def access_time(self, nbytes: int, sequential: bool) -> float:
        """Simulated seconds to move ``nbytes``, with positioning if random."""
        transfer = nbytes / self.transfer_rate_bytes
        if sequential:
            return transfer
        return self.avg_access_time_s + transfer


class SimulatedDisk:
    """A byte-addressed storage device with access accounting.

    Data lives in a real file (so external sorting genuinely spills to
    disk), but all access goes through :meth:`read` / :meth:`write`, which
    maintain :class:`~repro.storage.stats.IOCounters` and a simulated
    clock.  One ``SimulatedDisk`` models one spindle: sequentiality is
    judged against the last access on this device regardless of which
    logical file region it touched, exactly like a physical disk arm.

    Parameters
    ----------
    path:
        Backing file path.  If ``None``, an anonymous temporary file is
        created and removed on :meth:`close`.
    model:
        Timing constants; defaults to the paper's device.
    """

    def __init__(self, path: Optional[str] = None,
                 model: Optional[DiskModel] = None) -> None:
        self.model = model if model is not None else DiskModel()
        self.counters = IOCounters()
        self.simulated_time_s = 0.0
        # Set lifecycle flags before any file is opened so close() (and
        # __del__ on a half-constructed instance) always sees them.
        self._owns_file = False
        self._closed = True
        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-disk-", suffix=".bin")
            self._owns_file = True
            self._closed = False
            self._file = os.fdopen(fd, "r+b")
        else:
            self._path = path
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._last_end: Optional[int] = None
        self._closed = False

    @property
    def path(self) -> str:
        """Path of the backing file."""
        return self._path

    def __enter__(self) -> "SimulatedDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close the backing file (removing it if anonymous).

        Safe to call repeatedly and from ``__del__`` even when
        ``__init__`` did not finish (interpreter shutdown, construction
        failure): every attribute access is guarded.
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        backing = getattr(self, "_file", None)
        if backing is not None:
            try:
                backing.close()
            except OSError:
                pass
        if self._owns_file:
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __del__(self) -> None:
        # Last-resort cleanup so anonymous temp files cannot leak when an
        # exception escapes a pipeline before the owning close() runs.
        try:
            self.close()
        except Exception:
            pass

    def size(self) -> int:
        """Current size of the backing file in bytes."""
        self._file.flush()
        return os.fstat(self._file.fileno()).st_size

    def _account(self, offset: int, nbytes: int, is_write: bool) -> None:
        sequential = self._last_end == offset
        self.simulated_time_s += self.model.access_time(nbytes, sequential)
        c = self.counters
        if is_write:
            if sequential:
                c.sequential_writes += 1
            else:
                c.random_writes += 1
            c.bytes_written += nbytes
        else:
            if sequential:
                c.sequential_reads += 1
            else:
                c.random_reads += 1
            c.bytes_read += nbytes
        self._last_end = offset + nbytes

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``offset``; short at end of file."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        self._file.seek(offset)
        data = self._file.read(nbytes)
        self._account(offset, len(data), is_write=False)
        if nbytes > 0 and not data:
            # The request landed entirely past EOF: nothing was
            # transferred, so the head position is unknown territory —
            # do not let the next access pass as sequential.
            self._last_end = None
        return data

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; returns the number of bytes written."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        self._file.seek(offset)
        written = self._file.write(data)
        self._file.flush()
        self._account(offset, written, is_write=True)
        return written

    def append(self, data: bytes) -> int:
        """Write ``data`` at the current end of file; returns its offset."""
        offset = self.size()
        self.write(offset, data)
        return offset

    def truncate(self, nbytes: int) -> None:
        """Shrink or extend the backing file to exactly ``nbytes``."""
        self._file.truncate(nbytes)
        self._last_end = None

    def reset_position(self) -> None:
        """Forget the arm position; the next access is charged as random.

        Counters and clock are untouched.  Run-scoped accounting
        (:class:`~repro.storage.stats.IOScope`) calls this at scope
        entry so back-to-back pipeline runs reusing one disk classify
        their first access the same way a fresh disk would, instead of
        inheriting wherever the previous run left the arm.
        """
        self._last_end = None

    def reset_accounting(self) -> None:
        """Zero the counters and the simulated clock (data is untouched)."""
        self.counters.reset()
        self.simulated_time_s = 0.0
        self._last_end = None
