"""Operation counters shared by the storage and join layers.

The paper evaluates algorithms on a real disk; this reproduction replaces
wall-clock measurement with exact operation counting (random/sequential
disk accesses, bytes moved, distance computations) which the cost model in
:mod:`repro.analysis.costmodel` converts into simulated seconds using the
device constants published in Section 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class IOCounters:
    """Counts of physical I/O operations performed against one disk.

    The fault/retry fields are filled in by the robustness layers of
    :mod:`repro.storage.integrity`: ``read_faults`` counts reads that
    failed detectably (transient error or checksum mismatch),
    ``read_retries`` the re-issues a :class:`RetryPolicy` performed,
    ``corrupt_pages`` the checksum mismatches detected, and
    ``retry_backoff_s`` the simulated seconds spent backing off.
    """

    random_reads: int = 0
    sequential_reads: int = 0
    random_writes: int = 0
    sequential_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_faults: int = 0
    read_retries: int = 0
    corrupt_pages: int = 0
    retry_backoff_s: float = 0.0

    @property
    def total_accesses(self) -> int:
        """Total number of physical accesses (reads and writes)."""
        return (self.random_reads + self.sequential_reads
                + self.random_writes + self.sequential_writes)

    @property
    def total_reads(self) -> int:
        """Total number of read accesses, random plus sequential."""
        return self.random_reads + self.sequential_reads

    @property
    def total_writes(self) -> int:
        """Total number of write accesses, random plus sequential."""
        return self.random_writes + self.sequential_writes

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "IOCounters":
        """Return an independent copy of the current counts."""
        return IOCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __add__(self, other: "IOCounters") -> "IOCounters":
        return IOCounters(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def __sub__(self, other: "IOCounters") -> "IOCounters":
        return IOCounters(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        })


@dataclass
class CPUCounters:
    """Counts of the CPU operations that dominate join cost.

    ``distance_calculations`` counts invocations of the point-to-point
    distance test; ``dimension_evaluations`` counts how many per-dimension
    squared differences were actually accumulated before the early abort of
    Figure 7 fired (or the full dimension count when it did not).
    ``sequence_pairs`` counts recursive sequence-pair inspections in
    ``join_sequences`` and ``sequence_exclusions`` how many of those were
    pruned by the inactive-dimension rule.
    """

    distance_calculations: int = 0
    dimension_evaluations: int = 0
    sequence_pairs: int = 0
    sequence_exclusions: int = 0
    key_comparisons: int = 0
    mbr_tests: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "CPUCounters":
        """Return an independent copy of the current counts."""
        return CPUCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __add__(self, other: "CPUCounters") -> "CPUCounters":
        return CPUCounters(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def __sub__(self, other: "CPUCounters") -> "CPUCounters":
        return CPUCounters(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        })


class IOScope:
    """Run-local I/O accounting over disks shared between runs.

    A :class:`~repro.storage.disk.SimulatedDisk` keeps cumulative
    counters, a cumulative simulated clock and the arm position of the
    last access.  When one disk serves several pipeline runs
    (e.g. repeated ``ego_self_join_file`` calls against the same input),
    the counters are handled by delta arithmetic — but the arm position
    used to leak silently from run to run, so the first access of run
    N+1 could be classified sequential or random depending on where run
    N happened to finish, making identical runs report different
    random/sequential splits and simulated times.

    Entering the scope (``begin()``, or use it as a context manager)
    resets each disk's arm to the unknown position and snapshots its
    counters and clock; ``io_delta()`` / ``time_delta()`` then return
    exactly this run's I/O, independent of any earlier run.  ``None``
    entries and duplicate disk objects are tolerated (duplicates are
    counted once); wrappers without ``reset_position`` (plain duck-typed
    disks) skip the arm reset but still get delta accounting.
    """

    def __init__(self, *disks) -> None:
        unique = []
        seen = set()
        for disk in disks:
            if disk is None or id(disk) in seen:
                continue
            seen.add(id(disk))
            unique.append(disk)
        self.disks = unique
        self._io0 = None
        self._time0 = None

    def begin(self) -> "IOScope":
        """Reset arm positions and snapshot counters/clocks."""
        for disk in self.disks:
            reset = getattr(disk, "reset_position", None)
            if reset is not None:
                reset()
            # Fault layers carry run-relative pressure windows; re-base
            # them here so a plan reused across back-to-back runs (or
            # shared by per-shard pools) scopes its windows to this run.
            pressure = getattr(disk, "begin_pressure_scope", None)
            if pressure is not None:
                pressure()
        self._io0 = [disk.counters.snapshot() for disk in self.disks]
        self._time0 = [disk.simulated_time_s for disk in self.disks]
        return self

    def __enter__(self) -> "IOScope":
        return self.begin()

    def __exit__(self, *exc) -> None:
        pass

    def io_delta(self) -> IOCounters:
        """This scope's I/O, summed over its disks."""
        if self._io0 is None:
            raise RuntimeError("IOScope.begin() was never called")
        total = IOCounters()
        for disk, base in zip(self.disks, self._io0):
            total = total + (disk.counters - base)
        return total

    def time_delta(self) -> float:
        """This scope's simulated seconds, summed over its disks."""
        if self._time0 is None:
            raise RuntimeError("IOScope.begin() was never called")
        return sum(disk.simulated_time_s - t0
                   for disk, t0 in zip(self.disks, self._time0))


@dataclass
class OperationStats:
    """Bundle of I/O and CPU counters describing one algorithm run."""

    io: IOCounters = field(default_factory=IOCounters)
    cpu: CPUCounters = field(default_factory=CPUCounters)

    def reset(self) -> None:
        """Zero both counter groups."""
        self.io.reset()
        self.cpu.reset()

    def snapshot(self) -> "OperationStats":
        """Return an independent copy of the current counts."""
        return OperationStats(io=self.io.snapshot(), cpu=self.cpu.snapshot())

    def __add__(self, other: "OperationStats") -> "OperationStats":
        return OperationStats(io=self.io + other.io, cpu=self.cpu + other.cpu)

    def __sub__(self, other: "OperationStats") -> "OperationStats":
        return OperationStats(io=self.io - other.io, cpu=self.cpu - other.cpu)
