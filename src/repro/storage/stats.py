"""Operation counters shared by the storage and join layers.

The paper evaluates algorithms on a real disk; this reproduction replaces
wall-clock measurement with exact operation counting (random/sequential
disk accesses, bytes moved, distance computations) which the cost model in
:mod:`repro.analysis.costmodel` converts into simulated seconds using the
device constants published in Section 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class IOCounters:
    """Counts of physical I/O operations performed against one disk.

    The fault/retry fields are filled in by the robustness layers of
    :mod:`repro.storage.integrity`: ``read_faults`` counts reads that
    failed detectably (transient error or checksum mismatch),
    ``read_retries`` the re-issues a :class:`RetryPolicy` performed,
    ``corrupt_pages`` the checksum mismatches detected, and
    ``retry_backoff_s`` the simulated seconds spent backing off.
    """

    random_reads: int = 0
    sequential_reads: int = 0
    random_writes: int = 0
    sequential_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_faults: int = 0
    read_retries: int = 0
    corrupt_pages: int = 0
    retry_backoff_s: float = 0.0

    @property
    def total_accesses(self) -> int:
        """Total number of physical accesses (reads and writes)."""
        return (self.random_reads + self.sequential_reads
                + self.random_writes + self.sequential_writes)

    @property
    def total_reads(self) -> int:
        """Total number of read accesses, random plus sequential."""
        return self.random_reads + self.sequential_reads

    @property
    def total_writes(self) -> int:
        """Total number of write accesses, random plus sequential."""
        return self.random_writes + self.sequential_writes

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "IOCounters":
        """Return an independent copy of the current counts."""
        return IOCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __add__(self, other: "IOCounters") -> "IOCounters":
        return IOCounters(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def __sub__(self, other: "IOCounters") -> "IOCounters":
        return IOCounters(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        })


@dataclass
class CPUCounters:
    """Counts of the CPU operations that dominate join cost.

    ``distance_calculations`` counts invocations of the point-to-point
    distance test; ``dimension_evaluations`` counts how many per-dimension
    squared differences were actually accumulated before the early abort of
    Figure 7 fired (or the full dimension count when it did not).
    ``sequence_pairs`` counts recursive sequence-pair inspections in
    ``join_sequences`` and ``sequence_exclusions`` how many of those were
    pruned by the inactive-dimension rule.
    """

    distance_calculations: int = 0
    dimension_evaluations: int = 0
    sequence_pairs: int = 0
    sequence_exclusions: int = 0
    key_comparisons: int = 0
    mbr_tests: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "CPUCounters":
        """Return an independent copy of the current counts."""
        return CPUCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __add__(self, other: "CPUCounters") -> "CPUCounters":
        return CPUCounters(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def __sub__(self, other: "CPUCounters") -> "CPUCounters":
        return CPUCounters(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        })


@dataclass
class OperationStats:
    """Bundle of I/O and CPU counters describing one algorithm run."""

    io: IOCounters = field(default_factory=IOCounters)
    cpu: CPUCounters = field(default_factory=CPUCounters)

    def reset(self) -> None:
        """Zero both counter groups."""
        self.io.reset()
        self.cpu.reset()

    def snapshot(self) -> "OperationStats":
        """Return an independent copy of the current counts."""
        return OperationStats(io=self.io.snapshot(), cpu=self.cpu.snapshot())

    def __add__(self, other: "OperationStats") -> "OperationStats":
        return OperationStats(io=self.io + other.io, cpu=self.cpu + other.cpu)

    def __sub__(self, other: "OperationStats") -> "OperationStats":
        return OperationStats(io=self.io - other.io, cpu=self.cpu - other.cpu)
