"""Pluggable storage backends for shard-local disks.

The external pipeline's parent process always runs over
:class:`~repro.storage.disk.SimulatedDisk` — the simulated device is
what makes the paper's I/O accounting (and the byte-identity guarantees
of crash/resume and the sharded join) deterministic.  A *shard* of the
join, however, may live anywhere: on another simulated spindle, on a
plain OS file, or entirely in memory.  This module names that seam.

A :class:`Backend` is a small factory for disk objects implementing the
``SimulatedDisk`` duck-type protocol (``read`` / ``write`` / ``append``
/ ``truncate`` / ``size`` / ``close`` / ``reset_position`` /
``reset_accounting`` plus ``counters``, ``simulated_time_s`` and
``path``).  Three backends are provided:

* :class:`SimulatedBackend` — a :class:`~repro.storage.disk.SimulatedDisk`
  per shard: shard-local I/O is charged to the paper's cost model, so
  per-shard simulated I/O times are comparable with the parent's.
* :class:`FileBackend` — a :class:`FileDisk`: a real temporary file with
  operation counting but **no** simulated time (the shard pays only real
  wall-clock I/O), modelling a shard on commodity local storage.
* :class:`InMemoryBackend` — a :class:`MemoryDisk`: a ``bytearray``
  with the same protocol and zero simulated time, modelling a RAM-disk
  shard (and the fastest option for tests).

The choice of backend never changes *what* a shard computes — only
where its private copy of the data lives and what its local I/O costs —
so the merged join output is byte-identical across backends.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Optional

from .disk import SimulatedDisk
from .stats import IOCounters


class MemoryDisk:
    """A byte-addressed in-memory device with the disk protocol.

    Backed by a ``bytearray``; operations are counted in
    :class:`~repro.storage.stats.IOCounters` (with the same
    sequential/random classification as :class:`SimulatedDisk`) but no
    simulated time is charged — memory has no arm to move.
    """

    def __init__(self) -> None:
        self.counters = IOCounters()
        self.simulated_time_s = 0.0
        self._data = bytearray()
        self._last_end: Optional[int] = None

    @property
    def path(self) -> str:
        """Memory disks have no backing file."""
        return "<memory>"

    def __enter__(self) -> "MemoryDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the buffer (safe to call repeatedly)."""
        self._data = bytearray()

    def size(self) -> int:
        return len(self._data)

    def _account(self, offset: int, nbytes: int, is_write: bool) -> None:
        sequential = self._last_end == offset
        c = self.counters
        if is_write:
            if sequential:
                c.sequential_writes += 1
            else:
                c.random_writes += 1
            c.bytes_written += nbytes
        else:
            if sequential:
                c.sequential_reads += 1
            else:
                c.random_reads += 1
            c.bytes_read += nbytes
        self._last_end = offset + nbytes

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        data = bytes(self._data[offset:offset + nbytes])
        self._account(offset, len(data), is_write=False)
        if nbytes > 0 and not data:
            self._last_end = None
        return data

    def write(self, offset: int, data: bytes) -> int:
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        end = offset + len(data)
        if end > len(self._data):
            self._data.extend(b"\x00" * (end - len(self._data)))
        self._data[offset:end] = data
        self._account(offset, len(data), is_write=True)
        return len(data)

    def append(self, data: bytes) -> int:
        offset = len(self._data)
        self.write(offset, data)
        return offset

    def truncate(self, nbytes: int) -> None:
        if nbytes < len(self._data):
            del self._data[nbytes:]
        else:
            self._data.extend(b"\x00" * (nbytes - len(self._data)))
        self._last_end = None

    def reset_position(self) -> None:
        self._last_end = None

    def reset_accounting(self) -> None:
        self.counters.reset()
        self.simulated_time_s = 0.0
        self._last_end = None


class FileDisk:
    """A real temporary file with the disk protocol and op counting.

    Unlike :class:`SimulatedDisk`, no simulated time is charged: the
    shard pays actual OS I/O cost instead of the paper's cost model.
    The backing file is removed on :meth:`close` when anonymous.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.counters = IOCounters()
        self.simulated_time_s = 0.0
        self._owns_file = False
        self._closed = True
        if path is None:
            fd, self._path = tempfile.mkstemp(prefix="repro-shard-",
                                              suffix=".bin")
            self._owns_file = True
            self._file = os.fdopen(fd, "r+b")
        else:
            self._path = path
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._last_end: Optional[int] = None
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    def __enter__(self) -> "FileDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        backing = getattr(self, "_file", None)
        if backing is not None:
            try:
                backing.close()
            except OSError:
                pass
        if self._owns_file:
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def size(self) -> int:
        self._file.flush()
        return os.fstat(self._file.fileno()).st_size

    def _account(self, offset: int, nbytes: int, is_write: bool) -> None:
        sequential = self._last_end == offset
        c = self.counters
        if is_write:
            if sequential:
                c.sequential_writes += 1
            else:
                c.random_writes += 1
            c.bytes_written += nbytes
        else:
            if sequential:
                c.sequential_reads += 1
            else:
                c.random_reads += 1
            c.bytes_read += nbytes
        self._last_end = offset + nbytes

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        self._file.seek(offset)
        data = self._file.read(nbytes)
        self._account(offset, len(data), is_write=False)
        if nbytes > 0 and not data:
            self._last_end = None
        return data

    def write(self, offset: int, data: bytes) -> int:
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        self._file.seek(offset)
        written = self._file.write(data)
        self._file.flush()
        self._account(offset, written, is_write=True)
        return written

    def append(self, data: bytes) -> int:
        offset = self.size()
        self.write(offset, data)
        return offset

    def truncate(self, nbytes: int) -> None:
        self._file.truncate(nbytes)
        self._last_end = None

    def reset_position(self) -> None:
        self._last_end = None

    def reset_accounting(self) -> None:
        self.counters.reset()
        self.simulated_time_s = 0.0
        self._last_end = None


class Backend:
    """Factory for shard-local disks; subclasses pick the device kind."""

    name = "backend"

    def create_disk(self):
        """Return a fresh disk implementing the disk protocol."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SimulatedBackend(Backend):
    """One simulated spindle per shard (the paper's cost model)."""

    name = "simulated"

    def create_disk(self) -> SimulatedDisk:
        return SimulatedDisk()


class FileBackend(Backend):
    """One real temporary file per shard (no simulated time)."""

    name = "file"

    def create_disk(self) -> FileDisk:
        return FileDisk()


class InMemoryBackend(Backend):
    """One in-memory buffer per shard (no simulated time)."""

    name = "memory"

    def create_disk(self) -> MemoryDisk:
        return MemoryDisk()


BACKENDS: Dict[str, type] = {
    SimulatedBackend.name: SimulatedBackend,
    FileBackend.name: FileBackend,
    InMemoryBackend.name: InMemoryBackend,
}


def get_backend(name: str) -> Backend:
    """Instantiate the named backend (``simulated``/``file``/``memory``)."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown storage backend {name!r}; "
            f"choose from {sorted(BACKENDS)}") from None
