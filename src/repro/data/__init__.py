"""Workload generators and dataset persistence."""

from .loader import load_points, make_point_file, save_points
from .synthetic import (cad_like, epsilon_for_average_neighbors,
                        gaussian_clusters, uniform)
from .timeseries import (dft_features, normalize_series, random_walks,
                         seasonal_series, series_distance)

__all__ = [
    "cad_like",
    "epsilon_for_average_neighbors",
    "gaussian_clusters",
    "load_points",
    "make_point_file",
    "save_points",
    "uniform",
    "dft_features",
    "normalize_series",
    "random_walks",
    "seasonal_series",
    "series_distance",
]
