"""Workload generators.

Two of the paper's workloads are reproduced:

* **uniform** — "8-dimensional synthetic data sets … uniformly
  distributed points in the unit hypercube" (Section 5);
* **cad_like** — a synthetic substitute for the proprietary
  "16-dimensional feature vectors extracted from geometrical parts and
  variants thereof".  Parts become cluster centres; variants are
  perturbations whose per-dimension variance decays like a feature
  spectrum, and a low-rank mixing matrix correlates the dimensions.  The
  substitution (documented in DESIGN.md) preserves what the real data
  stressed: skewed ε-cell occupancy, correlated dimensions (making the
  Section 4.2 dimension ordering matter) and clustered neighborhoods.

``gaussian_clusters`` is a plainer clustered workload used by tests and
the application examples, and ``epsilon_for_average_neighbors`` selects
ε the way the paper does — "suitable for clustering following the
selection criteria proposed in [SEKX 98]" (the k-distance heuristic of
DBSCAN).
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform(n: int, dimensions: int, seed: RngLike = None) -> np.ndarray:
    """``n`` points uniformly distributed in the unit hypercube."""
    if n < 0 or dimensions <= 0:
        raise ValueError("n must be non-negative and dimensions positive")
    return _rng(seed).random((n, dimensions))


def gaussian_clusters(n: int, dimensions: int, clusters: int = 10,
                      std: float = 0.03, seed: RngLike = None,
                      noise_fraction: float = 0.05) -> np.ndarray:
    """A Gaussian-mixture workload clipped to the unit hypercube.

    ``noise_fraction`` of the points are uniform background noise, the
    rest are spherical Gaussian clusters around uniform centres.
    """
    if not 0 <= noise_fraction <= 1:
        raise ValueError("noise_fraction must be within [0, 1]")
    rng = _rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    centers = rng.random((clusters, dimensions))
    assignment = rng.integers(0, clusters, size=n_clustered)
    points = centers[assignment] + rng.normal(0.0, std,
                                              (n_clustered, dimensions))
    noise = rng.random((n_noise, dimensions))
    data = np.vstack([points, noise]) if n else np.empty((0, dimensions))
    data = np.clip(data, 0.0, 1.0)
    rng.shuffle(data)
    return data


def cad_like(n: int, dimensions: int = 16, parts: int = 40,
             spectrum_decay: float = 0.7, variant_scale: float = 0.04,
             rank: int = 4, seed: RngLike = None) -> np.ndarray:
    """CAD-feature-like vectors: parts, variants, decaying spectra.

    Each of ``parts`` base parts is a random feature vector; the data
    set consists of variants of the parts.  A variant perturbs its base
    with noise whose standard deviation decays geometrically per
    dimension (``spectrum_decay``) — the signature of Fourier-style
    shape features — and a shared low-``rank`` mixing couples the
    dimensions, producing the correlation real CAD features show.
    """
    if parts < 1 or rank < 1:
        raise ValueError("parts and rank must be positive")
    rng = _rng(seed)
    spectrum = spectrum_decay ** np.arange(dimensions)
    base = rng.random((parts, dimensions)) * spectrum
    assignment = rng.integers(0, parts, size=n)
    local = rng.normal(0.0, variant_scale, (n, dimensions)) * spectrum
    factors = rng.normal(0.0, variant_scale, (n, rank))
    mixing = rng.normal(0.0, 1.0, (rank, dimensions)) * spectrum
    data = base[assignment] + local + factors @ mixing
    return np.clip(data, 0.0, None)


def epsilon_for_average_neighbors(points: np.ndarray,
                                  target_neighbors: float = 3.0,
                                  sample: int = 500,
                                  seed: RngLike = 0) -> float:
    """Select ε so a point has ``target_neighbors`` ε-neighbours on average.

    The k-distance heuristic of [SEKX 98]: sample points, find each
    sample's distance to its k-th nearest neighbour in the full set, and
    take the median.  This is how the paper picks ε "suitable for
    clustering" per data set.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if n < 2:
        raise ValueError("need at least two points to select epsilon")
    k = max(1, int(round(target_neighbors)))
    if k >= n:
        raise ValueError("target_neighbors must be below the point count")
    rng = _rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    kdists = np.empty(len(idx))
    for row, i in enumerate(idx):
        diff = pts - pts[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        d2[i] = np.inf
        kdists[row] = np.sqrt(np.partition(d2, k - 1)[k - 1])
    return float(np.median(kdists))
