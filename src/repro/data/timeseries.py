"""Time-series workloads and DFT feature extraction.

The paper's introduction motivates similarity joins with feature
transformations: "complex objects are stored in databases … multi-
dimensional feature vectors are extracted from the original objects",
citing time-series analysis via [AFS 93] (Agrawal, Faloutsos, Swami).
That classic pipeline is reproduced here: sequences are mapped to the
magnitudes of their first Fourier coefficients, which contract the
Euclidean distance (Parseval), so a similarity join over the features
is a filter for similar subsequences.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_walks(n: int, length: int, step_std: float = 1.0,
                 seed: RngLike = None) -> np.ndarray:
    """``n`` random-walk series of the given ``length``."""
    if n < 0 or length <= 0:
        raise ValueError("n must be non-negative, length positive")
    rng = _rng(seed)
    steps = rng.normal(0.0, step_std, (n, length))
    return np.cumsum(steps, axis=1)


def seasonal_series(n: int, length: int, motifs: int = 5,
                    noise_std: float = 0.2,
                    seed: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Series built from a few shared seasonal motifs plus noise.

    Returns ``(series, motif_assignment)``: sequences sharing a motif
    are near-duplicates up to noise — the structure a similarity join
    over DFT features recovers.
    """
    if motifs < 1:
        raise ValueError("motifs must be positive")
    rng = _rng(seed)
    t = np.linspace(0.0, 2.0 * np.pi, length, endpoint=False)
    base = np.stack([
        np.sin((m % 3 + 1) * t + rng.uniform(0, 2 * np.pi))
        + 0.5 * np.sin((m % 5 + 2) * t + rng.uniform(0, 2 * np.pi))
        for m in range(motifs)])
    assignment = rng.integers(0, motifs, size=n)
    series = base[assignment] + rng.normal(0.0, noise_std, (n, length))
    return series, assignment


def normalize_series(series: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance normalisation per sequence."""
    s = np.asarray(series, dtype=np.float64)
    mean = s.mean(axis=1, keepdims=True)
    std = s.std(axis=1, keepdims=True)
    std[std == 0] = 1.0
    return (s - mean) / std


def dft_features(series: np.ndarray, coefficients: int = 8,
                 normalize: bool = True) -> np.ndarray:
    """[AFS 93] feature transformation: leading DFT coefficients.

    Returns a ``(n, 2 * coefficients)`` array of the real and imaginary
    parts of Fourier coefficients 1..``coefficients`` (the DC term is
    dropped; with per-series normalisation it is zero anyway), scaled so
    Euclidean feature distance lower-bounds Euclidean series distance
    (Parseval) — the property that makes the join a lossless filter.
    """
    s = np.asarray(series, dtype=np.float64)
    if s.ndim != 2:
        raise ValueError(f"series must be 2-dimensional, got {s.shape}")
    length = s.shape[1]
    if not 1 <= coefficients <= length // 2:
        raise ValueError(
            f"coefficients must be in [1, {length // 2}], "
            f"got {coefficients}")
    if normalize:
        s = normalize_series(s)
    spectrum = np.fft.rfft(s, axis=1) / np.sqrt(length)
    picked = spectrum[:, 1:coefficients + 1]
    feats = np.empty((len(s), 2 * coefficients))
    feats[:, 0::2] = picked.real
    feats[:, 1::2] = picked.imag
    # One-sided spectrum: each retained coefficient appears twice in
    # the full DFT, hence the sqrt(2) to preserve the Parseval bound.
    return feats * np.sqrt(2.0)


def series_distance(a: np.ndarray, b: np.ndarray,
                    normalize: bool = True) -> float:
    """Euclidean distance between two (optionally normalised) series."""
    x = np.vstack([a, b]).astype(np.float64)
    if normalize:
        x = normalize_series(x)
    return float(np.linalg.norm(x[0] - x[1]))
