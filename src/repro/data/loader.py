"""Dataset persistence helpers.

Thin convenience layer between in-memory point arrays and the simulated
storage substrate: write a dataset as a :class:`PointFile` on a
:class:`SimulatedDisk`, reload it, and manage experiment datasets in a
directory.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..storage.disk import DiskModel, SimulatedDisk
from ..storage.pagefile import PointFile


def make_point_file(points: np.ndarray,
                    ids: Optional[np.ndarray] = None,
                    path: Optional[str] = None,
                    model: Optional[DiskModel] = None,
                    batch_records: int = 65536
                    ) -> Tuple[SimulatedDisk, PointFile]:
    """Write a point array to a (new) simulated disk as a point file.

    Returns the disk (caller owns it and must ``close()`` it) and the
    point file.  The write accounting is reset afterwards so experiments
    start from clean counters.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-dimensional, got {pts.shape}")
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    disk = SimulatedDisk(path=path, model=model)
    pf = PointFile.create(disk, pts.shape[1])
    for start in range(0, len(pts), batch_records):
        pf.append(ids[start:start + batch_records],
                  pts[start:start + batch_records])
    pf.close()
    disk.reset_accounting()
    return disk, pf


def load_points(path: str,
                model: Optional[DiskModel] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Load ``(ids, points)`` from a point file on disk."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    disk = SimulatedDisk(path=path, model=model)
    try:
        pf = PointFile.open(disk)
        return pf.read_all()
    finally:
        disk.close()


def save_points(path: str, points: np.ndarray,
                ids: Optional[np.ndarray] = None) -> None:
    """Save ``points`` (and optional ``ids``) as a point file at ``path``."""
    disk, _pf = make_point_file(points, ids=ids, path=path)
    disk.close()
