"""Experiment reporting: aligned text tables and speedup summaries.

The benchmark harness prints, for every figure of the paper, the same
series the figure plots (total time per algorithm over the swept
parameter) plus the speedup factors the paper quotes in its text.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 4) -> str:
    """Human-readable cell rendering (compact floats, '-' for missing)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Cell]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render dict rows as an aligned, pipe-separated text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[format_value(row.get(col)) for col in columns]
                for row in rows]
    widths = [max([len(col)] + [len(r[i]) for r in rendered])
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.rjust(w)
                                for cell, w in zip(r, widths)))
    return "\n".join(lines)


def speedup_summary(times: Mapping[str, Sequence[float]],
                    reference: str) -> Dict[str, str]:
    """Min–max speedup of ``reference`` over every other algorithm.

    ``times`` maps algorithm name to its time series (same sweep order);
    the result maps each competitor to a "``lo``x – ``hi``x" string,
    mirroring statements like "EGO outperforms … the MuX-Join by factors
    between 6 and 9".
    """
    if reference not in times:
        raise KeyError(f"reference {reference!r} not in series")
    ref = times[reference]
    out: Dict[str, str] = {}
    for name, series in times.items():
        if name == reference:
            continue
        factors = [s / r for s, r in zip(series, ref)
                   if r > 0 and s is not None]
        if not factors:
            out[name] = "-"
            continue
        lo, hi = min(factors), max(factors)
        out[name] = f"{lo:.1f}x - {hi:.1f}x"
    return out


def robustness_summary(report) -> Sequence[Mapping[str, Cell]]:
    """Rows describing the fault/recovery behaviour of one join run.

    ``report`` is usually an
    :class:`~repro.core.ego_join.ExternalJoinReport`; the rows pair the
    faults the plan injected with what the detection and recovery layers
    did about them, ready for :func:`format_table`::

        print(format_table(robustness_summary(report),
                           title="robustness"))

    Every attribute is read tolerantly, so reports of other shapes —
    in particular the approximate :class:`~repro.joins.lsh_join.
    LSHJoinReport`, which has no fault plan, schedule or resume state —
    render their applicable subset (including recall/candidate rows)
    instead of raising.
    """
    rows = []
    log = getattr(report, "faults", None)
    if log is not None:
        rows.append({"metric": "injected transient read errors",
                     "value": log.transient_read_errors})
        rows.append({"metric": "injected corrupted reads",
                     "value": log.corrupted_reads})
        rows.append({"metric": "injected torn writes",
                     "value": log.torn_writes})
        rows.append({"metric": "injected crashes", "value": log.crashes})
    io = getattr(report, "io", None)
    if io is not None:
        rows.append({"metric": "read faults seen", "value": io.read_faults})
        rows.append({"metric": "reads retried", "value": io.read_retries})
        rows.append({"metric": "corrupt pages detected",
                     "value": io.corrupt_pages})
        rows.append({"metric": "retry backoff (simulated s)",
                     "value": io.retry_backoff_s})
    resumed = getattr(report, "resumed", None)
    if resumed is not None:
        rows.append({"metric": "resumed run", "value": resumed})
    schedule = getattr(report, "schedule_stats", None)
    if resumed and schedule is not None:
        rows.append({"metric": "unit pairs skipped as done",
                     "value": schedule.pairs_resumed})
    if schedule is not None:
        rows.append({"metric": "buffer shrinks under pressure",
                     "value": schedule.pressure_shrinks})
    lsh = getattr(report, "lsh", None)
    if lsh is not None:
        rows.append({"metric": "lsh tables (k per table)",
                     "value": f"{lsh.tables} ({lsh.k})"})
        rows.append({"metric": "lsh buckets scanned",
                     "value": lsh.buckets})
        rows.append({"metric": "lsh candidate pairs",
                     "value": lsh.candidates})
        rows.append({"metric": "lsh candidates verified in-ε",
                     "value": lsh.verified})
        rows.append({"metric": "lsh duplicate pairs dropped",
                     "value": lsh.duplicates})
        rows.append({"metric": "lsh model recall at ε",
                     "value": round(lsh.model_recall, 4)})
    wf = getattr(report, "worker_faults", None)
    if wf is not None:
        rows.append({"metric": "injected worker crashes",
                     "value": wf.crashes})
        rows.append({"metric": "injected worker stalls",
                     "value": wf.stalls})
        rows.append({"metric": "injected corrupted task results",
                     "value": wf.corrupted_results})
        rows.append({"metric": "injected task errors",
                     "value": wf.task_errors})
    sup = getattr(report, "supervisor", None)
    if sup is not None:
        rows.append({"metric": "tasks retried", "value": sup.retries})
        rows.append({"metric": "task timeouts", "value": sup.timeouts})
        rows.append({"metric": "worker crashes detected",
                     "value": sup.crashes_detected})
        rows.append({"metric": "corrupt task results detected",
                     "value": sup.corrupt_results})
        rows.append({"metric": "worker pools recycled",
                     "value": sup.pool_recycles})
        rows.append({"metric": "tasks quarantined",
                     "value": sup.quarantined})
        rows.append({"metric": "tasks drained in-process",
                     "value": sup.inline_tasks})
        rows.append({"metric": "degraded to serial",
                     "value": sup.degraded})
        rows.append({"metric": "task backoff (simulated s)",
                     "value": round(sup.backoff_simulated_s, 6)})
    shards = getattr(report, "shards", None)
    if shards is not None:
        rows.append({"metric": "shards", "value": len(shards)})
        rows.append({"metric": "shard retries",
                     "value": sum(s.retries for s in shards)})
        rows.append({"metric": "shards degraded inline",
                     "value": sum(1 for s in shards if s.degraded)})
    total_pairs = getattr(report, "total_pairs", None)
    if total_pairs is None:
        result = getattr(report, "result", None)
        if result is not None:
            total_pairs = result.count
    if total_pairs is not None:
        rows.append({"metric": "total result pairs",
                     "value": total_pairs})
    return rows


def shard_summary(report) -> Sequence[Mapping[str, Cell]]:
    """One row per shard of a sharded external join, for :func:`format_table`.

    ``report`` is an :class:`~repro.core.ego_join.ExternalJoinReport`
    from a run with ``shards`` set; returns ``[]`` for serial runs.
    Columns: the shard id, owned/fringe unit counts, fringe unit loads
    actually performed, result pairs, predicted candidate volume
    (the planner's balancing cost), retries and the backend's private
    I/O accesses.
    """
    shards = getattr(report, "shards", None)
    if not shards:
        return []
    rows = []
    for s in shards:
        rows.append({
            "shard": s.shard,
            "units": s.units,
            "fringe units": s.fringe_units,
            "fringe pages": s.fringe_pages,
            "pairs": s.pairs,
            "cost": s.cost,
            "retries": s.retries,
            "io accesses": s.io.total_accesses,
            "buffer miss": s.buffer.misses,
            "degraded": s.degraded,
        })
    return rows


def series_markdown(rows: Sequence[Mapping[str, Cell]],
                    columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a GitHub-markdown table (for EXPERIMENTS.md)."""
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(format_value(row.get(c))
                                       for c in columns) + " |")
    return "\n".join(lines)
