"""Join selectivity (result cardinality) estimation.

The second half of a query-optimizer cost model: predicting *how many
pairs* a similarity join will return.  Two estimators:

* :func:`sample_selectivity` — run the join on a random sample and
  scale the pair density quadratically (distribution-free, needs data);
* :func:`grid_selectivity` — a cell-occupancy histogram estimator: the
  expected pair count is computed from the ε-grid cell counts of a
  sample under the assumption that points are locally uniform within
  neighboring cells (cheap, works from a histogram alone, which is what
  a real optimizer would keep as a statistic).

Both return expected *unordered pair* counts for a self-join.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Union

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.ego_order import grid_cells, validate_epsilon
from ..core.result import JoinResult


def sample_selectivity(points: np.ndarray, epsilon: float, n_target: int,
                       sample: int = 1024,
                       seed: Union[int, None] = 0,
                       metric=None) -> float:
    """Estimated self-join result size via a sampled join.

    The pair density among a uniform sample of size ``m`` estimates the
    full density; expected pairs scale with ``n_target² / m²``.
    """
    validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    m = min(sample, len(pts))
    idx = rng.choice(len(pts), size=m, replace=False)
    result = ego_self_join(pts[idx], epsilon, metric=metric,
                           result=JoinResult(materialize=False))
    density = result.count / (m * (m - 1) / 2.0)
    return density * n_target * (n_target - 1) / 2.0


def _unit_ball_volume(dimensions: int) -> float:
    """Volume of the d-dimensional unit L2 ball."""
    return math.pi ** (dimensions / 2.0) / math.gamma(
        dimensions / 2.0 + 1.0)


def grid_selectivity(points: np.ndarray, epsilon: float, n_target: int,
                     sample: int = 4096, target_occupancy: float = 16.0,
                     seed: Union[int, None] = 0) -> float:
    """Estimated self-join result size from a grid histogram.

    A histogram estimator, as an optimizer would precompute: the sample
    is bucketed on a grid whose cell width is chosen *adaptively* so the
    expected occupancy is ``target_occupancy`` (occupancy statistics
    carry no density information when most cells hold 0–1 points).  The
    size-biased mean local density then gives the expected ε-neighbour
    count per point via the Euclidean ball volume:

        E[pairs] = n/2 · E_p[ρ(p)] · V_d(ε)

    Assumes local uniformity at the histogram-cell scale; density
    variation below that scale (very tight clusters) is smoothed out,
    biasing the estimate low — the sampling estimator is the fallback
    for such data.
    """
    eps = validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    n_sample = len(pts)
    if n_sample < 2 or n_target < 2:
        return 0.0
    d = pts.shape[1]
    rng = np.random.default_rng(seed)
    if n_sample > sample:
        pts = pts[rng.choice(n_sample, size=sample, replace=False)]
        n_sample = sample
    span = pts.max(axis=0) - pts.min(axis=0)
    span[span <= 0] = 1e-9
    bbox_volume = float(np.prod(span))
    width = (target_occupancy * bbox_volume / n_sample) ** (1.0 / d)
    cells = grid_cells(pts - pts.min(axis=0), width)
    histogram = Counter(map(tuple, cells.tolist()))
    cell_volume = width ** d
    # Size-biased mean density: each of the c points of a cell sits in
    # local sample density c / cell volume.
    experienced = sum(c * c for c in histogram.values()) / n_sample
    density_target = experienced / cell_volume * (n_target / n_sample)
    ball = _unit_ball_volume(d) * eps ** d
    return 0.5 * n_target * density_target * ball
