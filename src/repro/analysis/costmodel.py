"""Cost model: operation counters → simulated seconds.

The paper measures wall-clock time on a Pentium III 700 MHz with a
specific disk.  Python wall-clock ratios between algorithms would be
dominated by interpreter overhead rather than algorithmic cost, so this
reproduction counts operations exactly and charges them with constants
representing the paper's testbed (see DESIGN.md, substitution table):

* I/O time comes from the :class:`~repro.storage.disk.DiskModel`
  accounting that every simulated disk already performs;
* CPU time charges the counted distance-dimension evaluations, distance
  call overheads, MBR tests and sequence recursions with per-operation
  constants calibrated to a 700 MHz-class scalar CPU;
* external sorting charges a per-record cost per merge pass.

Absolute seconds are therefore *model seconds*; the paper-vs-measured
comparisons in EXPERIMENTS.md are about relative factors and curve
shapes, which the model preserves because the counts are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.ego_join import ExternalJoinReport
from ..joins.base import JoinReport
from ..storage.disk import DiskModel
from ..storage.records import record_size
from ..storage.stats import CPUCounters


@dataclass(frozen=True)
class CPUModel:
    """Per-operation CPU costs of a 700 MHz-class scalar machine."""

    per_dimension_eval_s: float = 12e-9
    per_distance_call_s: float = 30e-9
    per_mbr_test_dim_s: float = 14e-9
    per_sequence_pair_s: float = 150e-9
    per_sorted_record_pass_s: float = 1.2e-6

    def cpu_time(self, cpu: CPUCounters, dimensions: int) -> float:
        """Model seconds for the counted CPU operations."""
        return (cpu.dimension_evaluations * self.per_dimension_eval_s
                + cpu.distance_calculations * self.per_distance_call_s
                + cpu.mbr_tests * self.per_mbr_test_dim_s * dimensions
                + cpu.sequence_pairs * self.per_sequence_pair_s)


DEFAULT_CPU_MODEL = CPUModel()


def join_total_time(report: JoinReport, dimensions: int,
                    cpu_model: CPUModel = DEFAULT_CPU_MODEL) -> float:
    """Total model seconds of a competitor join run (I/O + CPU)."""
    return (report.simulated_io_time_s
            + cpu_model.cpu_time(report.cpu, dimensions))


def ego_total_time(report: ExternalJoinReport, dimensions: int,
                   cpu_model: CPUModel = DEFAULT_CPU_MODEL) -> float:
    """Total model seconds of an external EGO run (sort + join, I/O + CPU)."""
    sort_cpu = (report.sort_stats.records_sorted
                * max(1, report.sort_stats.merge_passes)
                * cpu_model.per_sorted_record_pass_s)
    return (report.simulated_io_time_s + sort_cpu
            + cpu_model.cpu_time(report.cpu, dimensions))


@dataclass
class NestedLoopEstimate:
    """Closed-form cost of a block nested loop self-join."""

    io_time_s: float
    cpu_time_s: float
    bytes_read: int
    distance_calculations: int

    @property
    def total_time_s(self) -> float:
        """I/O plus CPU model seconds."""
        return self.io_time_s + self.cpu_time_s


def nested_loop_estimate(n: int, dimensions: int, buffer_records: int,
                         disk_model: Optional[DiskModel] = None,
                         cpu_model: CPUModel = DEFAULT_CPU_MODEL,
                         avg_dimension_evals: Optional[float] = None
                         ) -> NestedLoopEstimate:
    """Calculated nested-loop cost, as the paper presents it.

    Section 5: "The values for the well known nested loop join with its
    quadratic complexity were merely calculated."  The formula mirrors
    :func:`repro.joins.nested_loop.nested_loop_self_join_file`: the
    outer relation is scanned once; for every outer block the tail of
    the inner relation is re-read.

    ``avg_dimension_evals`` is the mean number of per-dimension steps
    one early-abort distance test performs; measure it on a small run
    (see :mod:`repro.analysis.calibrate`) or omit it to assume the full
    ``dimensions``.
    """
    if n < 0 or dimensions <= 0 or buffer_records < 2:
        raise ValueError("invalid nested-loop estimate parameters")
    disk_model = disk_model if disk_model is not None else DiskModel()
    rec = record_size(dimensions)
    inner_block = max(1, buffer_records // 4)
    outer_block = max(1, buffer_records - inner_block)
    outer_blocks = math.ceil(n / outer_block) if n else 0

    outer_bytes = n * rec
    inner_records = 0
    inner_accesses = 0
    for k in range(outer_blocks):
        remaining = n - min((k + 1) * outer_block, n)
        inner_records += remaining
        inner_accesses += math.ceil(remaining / inner_block)
    inner_bytes = inner_records * rec
    bytes_read = outer_bytes + inner_bytes

    io_time = (outer_blocks * disk_model.access_time(
        min(outer_block, max(n, 1)) * rec, sequential=False))
    io_time += inner_accesses * disk_model.avg_access_time_s
    io_time += inner_bytes / disk_model.transfer_rate_bytes

    pairs = n * (n - 1) // 2
    evals = avg_dimension_evals if avg_dimension_evals is not None \
        else float(dimensions)
    cpu_time = (pairs * cpu_model.per_distance_call_s
                + pairs * evals * cpu_model.per_dimension_eval_s)
    return NestedLoopEstimate(io_time_s=io_time, cpu_time_s=cpu_time,
                              bytes_read=bytes_read,
                              distance_calculations=pairs)
