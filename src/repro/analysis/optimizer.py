"""Predictive EGO cost model for a query optimizer.

The paper's conclusion names "the extension of our cost model for the
use by the query optimizer" as future work.  This module provides that
piece: closed-form predictions of the external EGO self-join's I/O
behaviour — unit counts, ε-interval width, gallop/crabstep regime,
expected unit loads and I/O seconds — from dataset statistics alone,
plus a sampling-calibrated CPU estimate, and an optimizer that picks
the I/O unit size minimising predicted cost under a buffer budget.

The I/O model (uniform-data assumptions, documented per formula):

* the ε-interval of a point covers the points within ±ε in dimension 0,
  i.e. a fraction ``min(1, 2ε)`` of a unit-hypercube database — in
  units: ``W ≈ f·U + 1``;
* if ``W`` fits the buffer, the schedule gallops: every unit is loaded
  exactly once (``U`` loads);
* otherwise crabstep loads each unit once as a pin and re-reads, per
  window of ``B − 1`` pinned units, the ``W`` preceding units:
  ``loads ≈ U + U/(B−1) · W``.

CPU cost cannot be derived from uniformity alone (it depends on how the
recursion's pruning interacts with the data); it is calibrated by
running the in-memory join on a small sample and scaling the measured
distance-calculation density quadratically — a standard optimizer
technique (sample-based selectivity estimation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.result import JoinResult
from ..storage.disk import DiskModel
from ..storage.records import record_size
from ..storage.stats import CPUCounters
from .costmodel import CPUModel, DEFAULT_CPU_MODEL


@dataclass
class EgoCostEstimate:
    """Predicted cost of one external EGO self-join configuration."""

    n: int
    dimensions: int
    epsilon: float
    unit_bytes: int
    buffer_units: int
    units: int
    interval_units: float
    gallop: bool
    predicted_unit_loads: float
    sort_runs: int
    sort_passes: int
    predicted_io_time_s: float
    predicted_cpu_time_s: Optional[float] = None

    @property
    def predicted_total_s(self) -> float:
        """Predicted I/O plus CPU seconds (CPU 0 when uncalibrated)."""
        return self.predicted_io_time_s + (self.predicted_cpu_time_s or 0.0)


def interval_fraction(epsilon: float, data_extent: float = 1.0) -> float:
    """Fraction of a uniform database inside one ε-interval.

    The interval spans ±ε in the dominating dimension 0, clipped to the
    data extent.
    """
    if data_extent <= 0:
        raise ValueError("data_extent must be positive")
    return min(1.0, 2.0 * epsilon / data_extent)


def backward_fraction(epsilon: float, data_extent: float = 1.0) -> float:
    """Fraction of the database the schedule must look *back* over.

    The scheduler forms each unit pair when the later unit loads, so
    its working window reaches only ε backwards in dimension 0 — half
    the full ε-interval.
    """
    if data_extent <= 0:
        raise ValueError("data_extent must be positive")
    return min(1.0, epsilon / data_extent)


def estimate_ego_join(n: int, dimensions: int, epsilon: float,
                      unit_bytes: int, buffer_units: int,
                      sort_memory_records: Optional[int] = None,
                      disk_model: Optional[DiskModel] = None,
                      cpu_model: CPUModel = DEFAULT_CPU_MODEL,
                      sort_fanin: int = 16,
                      data_extent: float = 1.0) -> EgoCostEstimate:
    """Predict the cost of an external EGO self-join configuration."""
    if n < 0 or dimensions <= 0 or epsilon <= 0:
        raise ValueError("invalid dataset parameters")
    if unit_bytes <= 0 or buffer_units < 2:
        raise ValueError("invalid unit/buffer parameters")
    disk_model = disk_model if disk_model is not None else DiskModel()
    rec = record_size(dimensions)
    db_bytes = n * rec
    units = max(1, math.ceil(db_bytes / unit_bytes)) if n else 0
    per_unit = max(1, unit_bytes // rec)
    if sort_memory_records is None:
        sort_memory_records = max(2, buffer_units * per_unit)

    # The schedule's working window is one-sided: pairs are formed when
    # the later unit loads, so only the ε *backward* reach matters.
    interval_units = backward_fraction(epsilon, data_extent) * units + 1

    gallop = interval_units <= buffer_units
    if gallop or units == 0:
        loads = float(units)
        phases = 0.0
    else:
        window = max(1, buffer_units - 1)
        phases = units / window
        loads = units + phases * interval_units

    # Sorting: run generation reads+writes the data once; each merge
    # pass reads and writes it again.
    sort_runs = max(1, math.ceil(n / sort_memory_records)) if n else 0
    sort_passes = 1
    runs = sort_runs
    while runs > sort_fanin:
        runs = math.ceil(runs / sort_fanin)
        sort_passes += 1
    sort_bytes = 2 * db_bytes * (1 + sort_passes)
    # Merge seeks: each source-buffer refill is a random access.
    fanin = min(sort_fanin, max(2, sort_runs))
    refill_bytes = max(rec, (sort_memory_records // (fanin + 1)) * rec)
    sort_seeks = sort_passes * math.ceil(db_bytes / refill_bytes) if n else 0

    # Join I/O: unit loads stream in long consecutive runs (gallop scan,
    # pin groups, reload sweeps), so they cost transfer time plus a few
    # repositionings per crabstep phase.
    join_seeks = 1 + 2 * phases
    io_time = (loads * unit_bytes / disk_model.transfer_rate_bytes
               + join_seeks * disk_model.avg_access_time_s
               + sort_bytes / disk_model.transfer_rate_bytes
               + sort_seeks * disk_model.avg_access_time_s)
    return EgoCostEstimate(
        n=n, dimensions=dimensions, epsilon=epsilon,
        unit_bytes=unit_bytes, buffer_units=buffer_units, units=units,
        interval_units=interval_units, gallop=gallop,
        predicted_unit_loads=loads, sort_runs=sort_runs,
        sort_passes=sort_passes, predicted_io_time_s=io_time)


def calibrate_cpu(points_sample: np.ndarray, epsilon: float, n_target: int,
                  minlen: int = 32,
                  cpu_model: CPUModel = DEFAULT_CPU_MODEL) -> float:
    """Sample-calibrated CPU seconds for a join of ``n_target`` points.

    Runs the in-memory join on the sample, measures the distance-work
    density per point pair, and scales it by ``(n_target / n_sample)²``
    — candidate counts are quadratic in n at fixed ε and distribution.
    """
    pts = np.asarray(points_sample, dtype=np.float64)
    n_sample = len(pts)
    if n_sample < 2:
        raise ValueError("need at least two sample points")
    cpu = CPUCounters()
    ego_self_join(pts, epsilon, minlen=minlen, cpu=cpu,
                  result=JoinResult(materialize=False))
    sample_cpu_s = cpu_model.cpu_time(cpu, pts.shape[1])
    return sample_cpu_s * (n_target / n_sample) ** 2


def choose_unit_size(n: int, dimensions: int, epsilon: float,
                     budget_bytes: int,
                     candidates: Optional[list] = None,
                     disk_model: Optional[DiskModel] = None
                     ) -> EgoCostEstimate:
    """Pick the I/O unit size with the lowest predicted I/O cost.

    Sweeps power-of-two unit sizes that leave at least two frames in
    the buffer (``candidates`` overrides the sweep) and returns the
    cheapest estimate — the §4.1 unit-size knob, automated.
    """
    if budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive")
    rec = record_size(dimensions)
    if candidates is None:
        candidates = []
        size = max(rec, 1024)
        while size * 2 <= budget_bytes:
            candidates.append(size)
            size *= 2
        if not candidates:
            candidates = [max(rec, budget_bytes // 2)]
    best: Optional[EgoCostEstimate] = None
    for unit_bytes in candidates:
        buffer_units = max(2, budget_bytes // unit_bytes)
        if buffer_units < 2:
            continue
        est = estimate_ego_join(n, dimensions, epsilon, unit_bytes,
                                buffer_units, disk_model=disk_model)
        if best is None or est.predicted_io_time_s \
                < best.predicted_io_time_s:
            best = est
    if best is None:
        raise ValueError(
            f"no unit size fits a budget of {budget_bytes} bytes")
    return best
