"""Predictive EGO cost model for a query optimizer.

The paper's conclusion names "the extension of our cost model for the
use by the query optimizer" as future work.  This module provides that
piece: closed-form predictions of the external EGO self-join's I/O
behaviour — unit counts, ε-interval width, gallop/crabstep regime,
expected unit loads and I/O seconds — from dataset statistics alone,
plus a sampling-calibrated CPU estimate, and an optimizer that picks
the I/O unit size minimising predicted cost under a buffer budget.

The I/O model (uniform-data assumptions, documented per formula):

* the ε-interval of a point covers the points within ±ε in dimension 0,
  i.e. a fraction ``min(1, 2ε)`` of a unit-hypercube database — in
  units: ``W ≈ f·U + 1``;
* if ``W`` fits the buffer, the schedule gallops: every unit is loaded
  exactly once (``U`` loads);
* otherwise crabstep loads each unit once as a pin and re-reads, per
  window of ``B − 1`` pinned units, the ``W`` preceding units:
  ``loads ≈ U + U/(B−1) · W``.

CPU cost cannot be derived from uniformity alone (it depends on how the
recursion's pruning interacts with the data); it is calibrated by
running the in-memory join on a small sample and scaling the measured
distance-calculation density quadratically — a standard optimizer
technique (sample-based selectivity estimation).

The module also models the *approximate* regime: ``estimate_lsh_join``
predicts the LSH engine's cost from the same statistics (one input
scan, ``L`` bucket-file writes and scans, hashing work, and an expected
candidate volume from the p-stable collision model at the mean random
distance), and ``choose_join_impl`` compares the two predictions — this
is what lets ``--impl auto`` route high-d/large-ε workloads, where the
ε-grid order degenerates, to LSH when a recall target below 1 is
acceptable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.ego_join import ego_self_join
from ..core.result import JoinResult
from ..storage.disk import DiskModel
from ..storage.records import record_size
from ..storage.stats import CPUCounters
from .costmodel import CPUModel, DEFAULT_CPU_MODEL


@dataclass
class EgoCostEstimate:
    """Predicted cost of one external EGO self-join configuration."""

    n: int
    dimensions: int
    epsilon: float
    unit_bytes: int
    buffer_units: int
    units: int
    interval_units: float
    gallop: bool
    predicted_unit_loads: float
    sort_runs: int
    sort_passes: int
    predicted_io_time_s: float
    predicted_cpu_time_s: Optional[float] = None

    @property
    def predicted_total_s(self) -> float:
        """Predicted I/O plus CPU seconds (CPU 0 when uncalibrated)."""
        return self.predicted_io_time_s + (self.predicted_cpu_time_s or 0.0)


def interval_fraction(epsilon: float, data_extent: float = 1.0) -> float:
    """Fraction of a uniform database inside one ε-interval.

    The interval spans ±ε in the dominating dimension 0, clipped to the
    data extent.
    """
    if data_extent <= 0:
        raise ValueError("data_extent must be positive")
    return min(1.0, 2.0 * epsilon / data_extent)


def backward_fraction(epsilon: float, data_extent: float = 1.0) -> float:
    """Fraction of the database the schedule must look *back* over.

    The scheduler forms each unit pair when the later unit loads, so
    its working window reaches only ε backwards in dimension 0 — half
    the full ε-interval.
    """
    if data_extent <= 0:
        raise ValueError("data_extent must be positive")
    return min(1.0, epsilon / data_extent)


def estimate_ego_join(n: int, dimensions: int, epsilon: float,
                      unit_bytes: int, buffer_units: int,
                      sort_memory_records: Optional[int] = None,
                      disk_model: Optional[DiskModel] = None,
                      cpu_model: CPUModel = DEFAULT_CPU_MODEL,
                      sort_fanin: int = 16,
                      data_extent: float = 1.0) -> EgoCostEstimate:
    """Predict the cost of an external EGO self-join configuration."""
    if n < 0 or dimensions <= 0 or epsilon <= 0:
        raise ValueError("invalid dataset parameters")
    if unit_bytes <= 0 or buffer_units < 2:
        raise ValueError("invalid unit/buffer parameters")
    disk_model = disk_model if disk_model is not None else DiskModel()
    rec = record_size(dimensions)
    db_bytes = n * rec
    units = max(1, math.ceil(db_bytes / unit_bytes)) if n else 0
    per_unit = max(1, unit_bytes // rec)
    if sort_memory_records is None:
        sort_memory_records = max(2, buffer_units * per_unit)

    # The schedule's working window is one-sided: pairs are formed when
    # the later unit loads, so only the ε *backward* reach matters.
    interval_units = backward_fraction(epsilon, data_extent) * units + 1

    gallop = interval_units <= buffer_units
    if gallop or units == 0:
        loads = float(units)
        phases = 0.0
    else:
        window = max(1, buffer_units - 1)
        phases = units / window
        loads = units + phases * interval_units

    # Sorting: run generation reads+writes the data once; each merge
    # pass reads and writes it again.
    sort_runs = max(1, math.ceil(n / sort_memory_records)) if n else 0
    sort_passes = 1
    runs = sort_runs
    while runs > sort_fanin:
        runs = math.ceil(runs / sort_fanin)
        sort_passes += 1
    sort_bytes = 2 * db_bytes * (1 + sort_passes)
    # Merge seeks: each source-buffer refill is a random access.
    fanin = min(sort_fanin, max(2, sort_runs))
    refill_bytes = max(rec, (sort_memory_records // (fanin + 1)) * rec)
    sort_seeks = sort_passes * math.ceil(db_bytes / refill_bytes) if n else 0

    # Join I/O: unit loads stream in long consecutive runs (gallop scan,
    # pin groups, reload sweeps), so they cost transfer time plus a few
    # repositionings per crabstep phase.
    join_seeks = 1 + 2 * phases
    io_time = (loads * unit_bytes / disk_model.transfer_rate_bytes
               + join_seeks * disk_model.avg_access_time_s
               + sort_bytes / disk_model.transfer_rate_bytes
               + sort_seeks * disk_model.avg_access_time_s)
    return EgoCostEstimate(
        n=n, dimensions=dimensions, epsilon=epsilon,
        unit_bytes=unit_bytes, buffer_units=buffer_units, units=units,
        interval_units=interval_units, gallop=gallop,
        predicted_unit_loads=loads, sort_runs=sort_runs,
        sort_passes=sort_passes, predicted_io_time_s=io_time)


@dataclass
class LSHCostEstimate:
    """Predicted cost of one LSH approximate self-join configuration."""

    n: int
    dimensions: int
    epsilon: float
    k: int
    tables: int
    w: float
    model_recall: float
    #: Expected candidate pairs over all tables (collision model at the
    #: mean uniform-random distance; near pairs are a lower-order term).
    predicted_candidates: float
    predicted_io_time_s: float
    predicted_cpu_time_s: float

    @property
    def predicted_total_s(self) -> float:
        """Predicted I/O plus CPU seconds."""
        return self.predicted_io_time_s + self.predicted_cpu_time_s


def estimate_lsh_join(n: int, dimensions: int, epsilon: float,
                      k: Optional[int] = None,
                      tables: Optional[int] = None,
                      recall_target: float = 0.95,
                      w_scale: Optional[float] = None,
                      disk_model: Optional[DiskModel] = None,
                      cpu_model: CPUModel = DEFAULT_CPU_MODEL,
                      data_extent: float = 1.0) -> LSHCostEstimate:
    """Predict the cost of the LSH approximate self-join.

    I/O: the input streams once, and every one of the ``L`` tables
    writes its bucket file sequentially and scans it back — ``(1+2L)``
    database transfers with a handful of repositionings, all
    sequential-rate.  CPU: ``n·k·L`` projections of ``d`` coordinates,
    plus one exact re-verification per expected candidate.  The
    candidate volume uses the collision model at the mean distance of
    uniform random pairs, ``c̄ = extent·√(d/6)`` (the variance of a
    uniform coordinate difference is 1/6 per dimension) — the dominant
    population; genuinely-near pairs add a lower-order term.
    """
    if n < 0 or dimensions <= 0 or epsilon <= 0:
        raise ValueError("invalid dataset parameters")
    from ..index.lsh import DEFAULT_K, DEFAULT_W_SCALE, PStableHashFamily

    disk_model = disk_model if disk_model is not None else DiskModel()
    family = PStableHashFamily(
        dimensions, epsilon, k=DEFAULT_K if k is None else k,
        w_scale=DEFAULT_W_SCALE if w_scale is None else w_scale)
    if tables is None:
        tables = family.tables_for_recall(recall_target)
    rec = record_size(dimensions)
    db_bytes = n * rec
    transfers = (1 + 2 * tables) * db_bytes
    io_time = (transfers / disk_model.transfer_rate_bytes
               + (1 + 2 * tables) * disk_model.avg_access_time_s)

    mean_distance = data_extent * math.sqrt(dimensions / 6.0)
    p_random = family.table_collision(mean_distance)
    candidate_pairs = tables * (n * (n - 1) / 2.0) * p_random
    hash_evals = float(n) * family.k * tables * dimensions
    verify_evals = candidate_pairs * dimensions
    cpu_time = ((hash_evals + verify_evals)
                * cpu_model.per_dimension_eval_s
                + candidate_pairs * cpu_model.per_distance_call_s)
    return LSHCostEstimate(
        n=n, dimensions=dimensions, epsilon=epsilon, k=family.k,
        tables=int(tables), w=family.w,
        model_recall=family.recall_for_tables(tables),
        predicted_candidates=candidate_pairs,
        predicted_io_time_s=io_time, predicted_cpu_time_s=cpu_time)


def choose_join_impl(n: int, dimensions: int, epsilon: float,
                     unit_bytes: int, buffer_units: int,
                     recall_target: Optional[float] = 0.95,
                     disk_model: Optional[DiskModel] = None,
                     cpu_model: CPUModel = DEFAULT_CPU_MODEL,
                     data_extent: float = 1.0):
    """Pick ``"ego"`` or ``"lsh"`` from the two cost predictions.

    Returns ``(impl, ego_estimate, lsh_estimate)``.  The exact join
    wins whenever the caller demands exactness (``recall_target`` of
    ``None`` or ≥ 1), when the dataset is degenerate, or when its
    predicted total is lower; LSH wins in the high-d/large-ε regime
    where the ε-interval covers most of the grid order and EGO's
    window degenerates toward quadratic loads.  ``lsh_estimate`` is
    ``None`` only when LSH was not admissible (exactness demanded or
    the recall target unreachable at the default operating point).
    """
    ego_est = estimate_ego_join(n, dimensions, epsilon, unit_bytes,
                                buffer_units, disk_model=disk_model,
                                cpu_model=cpu_model,
                                data_extent=data_extent)
    ego_cpu = estimate_lsh_cpu_reference(n, dimensions, epsilon,
                                         cpu_model=cpu_model,
                                         data_extent=data_extent)
    if recall_target is None or recall_target >= 1.0 or n < 2:
        return "ego", ego_est, None
    try:
        lsh_est = estimate_lsh_join(n, dimensions, epsilon,
                                    recall_target=recall_target,
                                    disk_model=disk_model,
                                    cpu_model=cpu_model,
                                    data_extent=data_extent)
    except ValueError:
        return "ego", ego_est, None
    ego_total = ego_est.predicted_io_time_s + ego_cpu
    impl = "lsh" if lsh_est.predicted_total_s < ego_total else "ego"
    return impl, ego_est, lsh_est


def estimate_lsh_cpu_reference(n: int, dimensions: int, epsilon: float,
                               cpu_model: CPUModel = DEFAULT_CPU_MODEL,
                               data_extent: float = 1.0) -> float:
    """Closed-form CPU seconds for the exact join, for comparison.

    The EGO estimate's CPU half normally comes from sample calibration
    (:func:`calibrate_cpu`); when the optimizer only has statistics, a
    selectivity model has to stand in.  The ε-interval in dimension 0
    admits a fraction ``min(1, 2ε/extent)`` of the pairs as candidates;
    each costs one early-aborted distance evaluation (~2 dimensions on
    uniform data before the running sum exceeds ε²) — deliberately
    optimistic for EGO, so ``choose_join_impl`` only routes to LSH on a
    clear win.
    """
    if n < 2:
        return 0.0
    candidate_fraction = interval_fraction(epsilon, data_extent)
    candidates = candidate_fraction * n * (n - 1) / 2.0
    dims_per_test = min(dimensions, 2.0)
    return (candidates * dims_per_test * cpu_model.per_dimension_eval_s
            + candidates * cpu_model.per_distance_call_s)


def calibrate_cpu(points_sample: np.ndarray, epsilon: float, n_target: int,
                  minlen: int = 32,
                  cpu_model: CPUModel = DEFAULT_CPU_MODEL) -> float:
    """Sample-calibrated CPU seconds for a join of ``n_target`` points.

    Runs the in-memory join on the sample, measures the distance-work
    density per point pair, and scales it by ``(n_target / n_sample)²``
    — candidate counts are quadratic in n at fixed ε and distribution.
    """
    pts = np.asarray(points_sample, dtype=np.float64)
    n_sample = len(pts)
    if n_sample < 2:
        raise ValueError("need at least two sample points")
    cpu = CPUCounters()
    ego_self_join(pts, epsilon, minlen=minlen, cpu=cpu,
                  result=JoinResult(materialize=False))
    sample_cpu_s = cpu_model.cpu_time(cpu, pts.shape[1])
    return sample_cpu_s * (n_target / n_sample) ** 2


def choose_unit_size(n: int, dimensions: int, epsilon: float,
                     budget_bytes: int,
                     candidates: Optional[list] = None,
                     disk_model: Optional[DiskModel] = None
                     ) -> EgoCostEstimate:
    """Pick the I/O unit size with the lowest predicted I/O cost.

    Sweeps power-of-two unit sizes that leave at least two frames in
    the buffer (``candidates`` overrides the sweep) and returns the
    cheapest estimate — the §4.1 unit-size knob, automated.
    """
    if budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive")
    rec = record_size(dimensions)
    if candidates is None:
        candidates = []
        size = max(rec, 1024)
        while size * 2 <= budget_bytes:
            candidates.append(size)
            size *= 2
        if not candidates:
            candidates = [max(rec, budget_bytes // 2)]
    best: Optional[EgoCostEstimate] = None
    for unit_bytes in candidates:
        buffer_units = max(2, budget_bytes // unit_bytes)
        if buffer_units < 2:
            continue
        est = estimate_ego_join(n, dimensions, epsilon, unit_bytes,
                                buffer_units, disk_model=disk_model)
        if best is None or est.predicted_io_time_s \
                < best.predicted_io_time_s:
            best = est
    if best is None:
        raise ValueError(
            f"no unit size fits a budget of {budget_bytes} bytes")
    return best
