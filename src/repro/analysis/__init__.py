"""Cost model, calibration and experiment reporting."""

from .calibrate import measure_avg_dimension_evals, measure_ordering_gain
from .optimizer import (EgoCostEstimate, LSHCostEstimate,
                        backward_fraction, calibrate_cpu,
                        choose_join_impl, choose_unit_size,
                        estimate_ego_join, estimate_lsh_join,
                        interval_fraction)
from .costmodel import (CPUModel, DEFAULT_CPU_MODEL, NestedLoopEstimate,
                        ego_total_time, join_total_time,
                        nested_loop_estimate)
from .reporting import (format_table, format_value, series_markdown,
                        speedup_summary)
from .selectivity import grid_selectivity, sample_selectivity

__all__ = [
    "CPUModel",
    "EgoCostEstimate",
    "LSHCostEstimate",
    "backward_fraction",
    "calibrate_cpu",
    "choose_join_impl",
    "choose_unit_size",
    "estimate_ego_join",
    "estimate_lsh_join",
    "interval_fraction",
    "grid_selectivity",
    "sample_selectivity",
    "DEFAULT_CPU_MODEL",
    "NestedLoopEstimate",
    "ego_total_time",
    "format_table",
    "format_value",
    "join_total_time",
    "measure_avg_dimension_evals",
    "measure_ordering_gain",
    "nested_loop_estimate",
    "series_markdown",
    "speedup_summary",
]
