"""Calibration helpers for the cost model.

The only data-dependent quantity in the closed-form nested-loop estimate
is how early the Figure-7 distance test aborts on average; this module
measures it on a sample, and offers a paired measurement of the effect
of the Section 4.2 dimension ordering (used by the ablation benchmark).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..core.distance import natural_ordering, pairs_within_vector
from ..core.ego_order import validate_epsilon
from ..storage.stats import CPUCounters


def measure_avg_dimension_evals(points: np.ndarray, epsilon: float,
                                sample: int = 512,
                                seed: Union[int, None] = 0) -> float:
    """Mean early-abort length of the distance test on random point pairs.

    Samples up to ``sample`` points, evaluates all pairs among them with
    the natural dimension order, and returns dimension evaluations per
    distance call — the ``avg_dimension_evals`` input of
    :func:`repro.analysis.costmodel.nested_loop_estimate`.
    """
    eps = validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) < 2:
        raise ValueError("need at least two points")
    rng = np.random.default_rng(seed)
    if len(pts) > sample:
        pts = pts[rng.choice(len(pts), size=sample, replace=False)]
    cpu = CPUCounters()
    order = natural_ordering(pts.shape[1])
    pairs_within_vector(pts, pts, eps * eps, order, counters=cpu,
                        upper_triangle=True)
    if cpu.distance_calculations == 0:
        return float(pts.shape[1])
    return cpu.dimension_evaluations / cpu.distance_calculations


def measure_ordering_gain(points_a: np.ndarray, points_b: np.ndarray,
                          epsilon: float, order: np.ndarray) -> float:
    """Dimension evaluations saved by a custom order vs the natural one.

    Returns the ratio ``evals(order) / evals(natural)``; below 1 means
    the ordering aborts earlier, which is what Section 4.2 predicts for
    correlated data.
    """
    eps = validate_epsilon(epsilon)
    a = np.asarray(points_a, dtype=np.float64)
    b = np.asarray(points_b, dtype=np.float64)
    natural = CPUCounters()
    custom = CPUCounters()
    pairs_within_vector(a, b, eps * eps, natural_ordering(a.shape[1]),
                        counters=natural)
    pairs_within_vector(a, b, eps * eps, np.asarray(order, dtype=np.intp),
                        counters=custom)
    if natural.dimension_evaluations == 0:
        return 1.0
    return custom.dimension_evaluations / natural.dimension_evaluations
