"""Size Separation Spatial Join / Multidimensional Spatial Join
structures ([KS 97], [KS 98a]).

Each point is considered as a cube with side length ε (centred on the
point).  A point's **level** is the depth of the smallest cell of the
recursive binary decomposition of the unit data space that fully
contains its cube; the points of one level form a *level file*, ordered
by the Hilbert value of their level cells.

Section 2.2 of the EGO paper explains why this degrades in high
dimensions: the probability that a cube crosses a decomposition plane
at a very high level grows with d, pushing points into the coarse
levels — and during join processing every coarse-level point stays
resident for a large fraction of the sweep.  [BK 01] measured "an
average of 46 % of the DB size (e.g. for 8-dimensional artificial
data)" resident.  :meth:`LevelFiles.average_resident_fraction`
reproduces exactly that statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..core.ego_order import validate_epsilon

#: Depth cap of the binary decomposition (cells of side 2^-MAX_LEVEL).
MAX_LEVEL = 20


def point_levels(points: np.ndarray, epsilon: float,
                 max_level: int = MAX_LEVEL) -> np.ndarray:
    """Decomposition level of every point's ε-cube.

    The cube of ``p`` is ``[p − ε/2, p + ε/2]`` per dimension, clipped
    to the unit space.  Its level is the largest ``l`` such that both
    cube corners fall into the same cell of side ``2^-l`` in *every*
    dimension; level 0 means the cube crosses the top-level split in
    some dimension.
    """
    eps = validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-dimensional, got {pts.shape}")
    lo = np.clip(pts - eps / 2.0, 0.0, 1.0 - 1e-12)
    hi = np.clip(pts + eps / 2.0, 0.0, 1.0 - 1e-12)
    levels = np.full(len(pts), max_level, dtype=np.int64)
    for l in range(1, max_level + 1):
        scale = float(1 << l)
        crosses = (np.floor(lo * scale) != np.floor(hi * scale)).any(axis=1)
        # A cube crossing a plane of level l fits only up to level l-1;
        # keep the minimum over all planes it crosses.
        levels[crosses & (levels >= l)] = l - 1
    return levels


def cell_at_level(points: np.ndarray, level: int) -> np.ndarray:
    """Integer cell coordinates of points at one decomposition level."""
    pts = np.asarray(points, dtype=np.float64)
    scale = float(1 << level)
    return np.floor(np.clip(pts, 0.0, 1.0 - 1e-12) * scale).astype(np.int64)


@dataclass
class LevelFile:
    """Points of one level, grouped by their level cell."""

    level: int
    cells: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(v) for v in self.cells.values())


class LevelFiles:
    """The complete size-separation structure of one point set."""

    def __init__(self, points: np.ndarray, epsilon: float,
                 max_level: int = MAX_LEVEL) -> None:
        self.points = np.asarray(points, dtype=np.float64)
        self.epsilon = validate_epsilon(epsilon)
        self.max_level = max_level
        self.levels_of = point_levels(self.points, self.epsilon, max_level)
        self.files: Dict[int, LevelFile] = {}
        for level in np.unique(self.levels_of):
            level = int(level)
            idx = np.nonzero(self.levels_of == level)[0]
            cells = cell_at_level(self.points[idx], level)
            lf = LevelFile(level=level)
            order = np.lexsort([cells[:, j]
                                for j in range(cells.shape[1] - 1, -1, -1)])
            for row in order:
                key = tuple(cells[row].tolist())
                lf.cells.setdefault(key, []).append(idx[row])
            lf.cells = {k: np.array(v, dtype=np.int64)
                        for k, v in lf.cells.items()}
            self.files[level] = lf

    @property
    def level_sizes(self) -> Dict[int, int]:
        """Points per populated level."""
        return {level: len(lf) for level, lf in self.files.items()}

    def ancestor_cell(self, cell: Tuple[int, ...], from_level: int,
                      to_level: int) -> Tuple[int, ...]:
        """The level-``to_level`` cell containing a ``from_level`` cell."""
        if to_level > from_level:
            raise ValueError("ancestors live at coarser (smaller) levels")
        shift = from_level - to_level
        return tuple(c >> shift for c in cell)

    def average_resident_fraction(self) -> float:
        """Average fraction of the database resident during the sweep.

        During the Hilbert-order sweep of the finest cells, a point of
        level ``l`` stays resident while the sweep is inside its cell —
        a fraction ``2^(−d·l)`` of the sweep (its cell's share of the
        space).  Level-0 points are resident throughout.  This is the
        statistic [BK 01] reports as ~46 % for 8-d artificial data.
        """
        n = len(self.points)
        if n == 0:
            return 0.0
        d = self.points.shape[1]
        total = 0.0
        for level, size in self.level_sizes.items():
            total += size * 2.0 ** (-d * level)
        return total / n


def level_zero_probability(epsilon: float, dimensions: int) -> float:
    """Analytic probability a uniform point's cube crosses the top split.

    Per dimension the cube misses the midplane with probability
    ``1 − ε`` (uniform centre in the unit interval), so it crosses some
    plane with probability ``1 − (1 − ε)^d`` — the curse-of-dimension
    effect Section 2.2 describes.
    """
    eps = validate_epsilon(epsilon)
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    return 1.0 - max(0.0, 1.0 - eps) ** dimensions
