"""p-stable locality-sensitive hashing for the Euclidean ε-join.

The EGO join is exact by construction, but the paper's own experiments
(Section 5, Figure 10) show its ε-grid order degrading as dimensionality
and ε grow — the regime in which approximate methods win.  This module
provides the hash-family substrate of the I/O-efficient LSH join
(:mod:`repro.joins.lsh_join`), in the style of Datar et al.'s p-stable
scheme as used by Pagh et al., *I/O-Efficient Similarity Join*.

One *table* concatenates ``k`` independent projections

    h_i(x) = floor((a_i · x + b_i) / w),     a_i ~ N(0, I),  b_i ~ U[0, w)

into a bucket key; two points collide in the table iff all ``k``
projections agree.  ``L`` independent tables are probed; a pair is a
candidate iff it collides in at least one.  For two points at Euclidean
distance ``c`` the per-projection collision probability has the closed
form (with ``r = w / c``)

    p(c) = 1 − 2·Φ(−r) − (2 / (√(2π)·r)) · (1 − exp(−r²/2)),

monotone decreasing in ``c`` — which makes the family *locality
sensitive* and yields the recall model ``1 − (1 − p(ε)^k)^L`` that
:func:`tables_for_recall` inverts to auto-size ``L``.

Determinism contract: the parameters of table ``t`` are a pure function
of ``(seed, t)`` — independent of ``L`` — so the table sequence of a
family with ``L + 1`` tables extends the one with ``L`` tables.  The
candidate set is therefore monotone non-decreasing in ``L`` *exactly*
(not merely in expectation), which is what the metamorphic relation
``lsh_tables_monotone`` checks.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

#: Domain-separation salt for the per-table generators, so an LSH family
#: never shares a stream with workload generators using small seeds.
_TABLE_SALT = 0x15AB

#: Hard ceiling on auto-sized table counts: beyond this the requested
#: recall is declared unreachable at the given (k, w) rather than
#: silently building an absurd index.
MAX_TABLES = 512

#: Default number of concatenated projections per table.
DEFAULT_K = 2

#: Default projection width in units of ε.  ``w = 4ε`` puts the
#: per-projection collision probability at ~0.80 for pairs at distance
#: exactly ε, so small table counts already reach high recall.
DEFAULT_W_SCALE = 4.0


def collision_probability(ratio: float) -> float:
    """Per-projection collision probability at width/distance ``ratio``.

    ``ratio = w / c`` for projection width ``w`` and point distance
    ``c``.  The closed form follows Datar et al. (2004): project the
    difference vector onto a standard normal direction and integrate
    the probability that both points land in the same width-``w`` bin.
    Limits: → 1 as the ratio grows (close pairs nearly always collide),
    → 0 as it shrinks.
    """
    if ratio < 0:
        raise ValueError(f"width/distance ratio must be >= 0, got {ratio}")
    if ratio == 0.0:
        return 0.0
    if math.isinf(ratio):
        return 1.0
    # Φ(−r) via erfc for precision at large r.
    phi_neg = 0.5 * math.erfc(ratio / math.sqrt(2.0))
    density_term = (2.0 / (math.sqrt(2.0 * math.pi) * ratio)
                    * (1.0 - math.exp(-0.5 * ratio * ratio)))
    return max(0.0, min(1.0, 1.0 - 2.0 * phi_neg - density_term))


class PStableHashFamily:
    """A seeded family of ``k``-projection p-stable hash tables.

    Parameters
    ----------
    dimensions, epsilon:
        Data dimensionality and the join threshold; the projection
        width is ``w = w_scale · ε``.
    k:
        Projections concatenated per table.  Larger ``k`` sharpens the
        p1/p2 gap (fewer spurious candidates) but lowers ``p1^k``, so
        more tables are needed for the same recall.
    w_scale:
        Projection width in units of ε.
    seed:
        Seeds every table; table ``t`` depends only on ``(seed, t)``.
    """

    def __init__(self, dimensions: int, epsilon: float, k: int = DEFAULT_K,
                 w_scale: float = DEFAULT_W_SCALE, seed: int = 0) -> None:
        if dimensions < 1:
            raise ValueError(f"dimensions must be positive, got {dimensions}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if w_scale <= 0:
            raise ValueError(f"w_scale must be positive, got {w_scale}")
        self.dimensions = int(dimensions)
        self.epsilon = float(epsilon)
        self.k = int(k)
        self.w_scale = float(w_scale)
        self.w = self.w_scale * self.epsilon
        self.seed = int(seed)
        self._params: List[Tuple[np.ndarray, np.ndarray]] = []

    # -- per-table parameters ---------------------------------------------

    def table_params(self, table: int) -> Tuple[np.ndarray, np.ndarray]:
        """Projection matrix ``(k, d)`` and offsets ``(k,)`` of one table.

        Derived from ``(seed, table)`` alone and cached, so the same
        family object (and any family with the same seed) always hashes
        identically regardless of how many tables are ultimately probed.
        """
        if table < 0:
            raise ValueError(f"table index must be >= 0, got {table}")
        while len(self._params) <= table:
            t = len(self._params)
            rng = np.random.default_rng([_TABLE_SALT, self.seed, t])
            a = rng.standard_normal((self.k, self.dimensions))
            b = rng.uniform(0.0, self.w, size=self.k)
            self._params.append((a, b))
        return self._params[table]

    def keys(self, points: np.ndarray, table: int) -> np.ndarray:
        """Bucket keys ``(n, k)`` of ``points`` under one table.

        Each row is the concatenated projection key; two points share a
        bucket iff their rows are equal.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self.dimensions:
            raise ValueError(
                f"points must have shape (n, {self.dimensions}), "
                f"got {pts.shape}")
        a, b = self.table_params(table)
        projected = pts @ a.T + b
        return np.floor(projected / self.w).astype(np.int64)

    # -- the collision-probability model ----------------------------------

    def projection_collision(self, distance: float) -> float:
        """Single-projection collision probability at ``distance``."""
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        if distance == 0.0:
            return 1.0
        return collision_probability(self.w / distance)

    def table_collision(self, distance: float) -> float:
        """Probability that one table's full ``k``-key matches."""
        return self.projection_collision(distance) ** self.k

    @property
    def p1(self) -> float:
        """Table-collision probability for pairs at distance exactly ε.

        Pairs *inside* the ball are closer, so ``p1`` lower-bounds their
        collision probability — the model's recall guarantees are
        worst-case over the ε-ball.
        """
        return self.table_collision(self.epsilon)

    def p2(self, separation: float = 2.0) -> float:
        """Table-collision probability at ``separation``·ε (the far side).

        The p1/p2 gap is the family's selectivity: candidates at
        ``separation``·ε survive a table with probability ``p2``.
        """
        if separation <= 0:
            raise ValueError(
                f"separation must be positive, got {separation}")
        return self.table_collision(separation * self.epsilon)

    def recall_for_tables(self, tables: int,
                          distance: Optional[float] = None) -> float:
        """Model recall of an ``tables``-table probe at ``distance``.

        Defaults to the worst case ``distance = ε``; the probability
        that at least one table catches the pair is
        ``1 − (1 − p^k)^L``.
        """
        if tables < 0:
            raise ValueError(f"tables must be >= 0, got {tables}")
        d = self.epsilon if distance is None else float(distance)
        return 1.0 - (1.0 - self.table_collision(d)) ** tables

    def tables_for_recall(self, recall_target: float,
                          max_tables: int = MAX_TABLES) -> int:
        """Smallest ``L`` whose model recall at distance ε meets the target.

        Raises :class:`ValueError` when the target needs more than
        ``max_tables`` tables — the (k, w) operating point is then too
        weak for the requested recall and should be re-tuned instead of
        silently exploding the index.
        """
        if not 0.0 < recall_target < 1.0:
            raise ValueError(
                f"recall_target must be in (0, 1), got {recall_target}")
        p_table = self.p1
        if p_table <= 0.0:
            raise ValueError(
                "table collision probability at ε is 0; increase w_scale "
                "or decrease k")
        if p_table >= 1.0:
            return 1
        tables = math.ceil(math.log1p(-recall_target)
                           / math.log1p(-p_table))
        tables = max(1, tables)
        if tables > max_tables:
            raise ValueError(
                f"recall target {recall_target} needs {tables} tables at "
                f"k={self.k}, w={self.w:g} (p1={p_table:.4g}) — above the "
                f"cap of {max_tables}; increase w_scale or decrease k")
        return tables


def sort_by_keys(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Bucket order and boundaries for one table's key matrix.

    Returns ``(order, starts)``: ``order`` sorts the rows of ``keys``
    lexicographically (a stable sort, so the layout is deterministic),
    and ``starts`` holds the start offsets of each bucket run in the
    sorted order, with a trailing ``n`` sentinel — bucket ``i`` spans
    ``order[starts[i]:starts[i+1]]``.
    """
    keys = np.asarray(keys)
    n = len(keys)
    if n == 0:
        return (np.empty(0, dtype=np.intp),
                np.array([0], dtype=np.intp))
    order = np.lexsort(keys.T[::-1])
    sorted_keys = keys[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    if n > 1:
        boundary[1:] = (sorted_keys[1:] != sorted_keys[:-1]).any(axis=1)
    starts = np.flatnonzero(boundary)
    return order, np.append(starts, n).astype(np.intp)
