"""R-tree over disk-resident leaf pages.

The competitor joins of the paper's evaluation (RSJ [BKS 93] and
Z-Order-RSJ, which is "very similar to the Breadth-First-R-tree-Join
(BFRJ) [HJR 97]") operate on R-tree indexes.  Following the evaluation
setup, indexes are *preconstructed*: the build cost is not charged to the
join.

Layout: leaf pages are contiguous runs of records in a packed
:class:`~repro.storage.pagefile.PointFile` (one disk access loads one
page); the directory is an in-memory tree of MBRs whose leaf-level
entries name leaf page numbers.  Bulk loading uses Sort-Tile-Recursive
[KF 94-style packing] by default, with space-filling-curve packing
(Z-order or Hilbert) as alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..curves.hilbert import hilbert_key_columns
from ..curves.zorder import morton_key_columns, normalize_cells, required_bits
from ..storage.buffer import BufferPool
from ..storage.disk import SimulatedDisk
from ..storage.pagefile import PointFile
from .mbr import MBR, union_all

DEFAULT_FANOUT = 16


@dataclass
class RTreeNode:
    """One directory node; leaf-level nodes carry a leaf page number."""

    mbr: MBR
    level: int
    children: List["RTreeNode"] = field(default_factory=list)
    leaf_page: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """True for leaf-level directory entries (they name a data page)."""
        return self.leaf_page is not None


def _str_order(points: np.ndarray, page_records: int) -> np.ndarray:
    """Sort-Tile-Recursive permutation packing points into leaf pages."""
    n, d = points.shape

    def tile(index: np.ndarray, dim: int) -> List[np.ndarray]:
        if dim == d - 1 or len(index) <= page_records:
            order = np.argsort(points[index, dim], kind="stable")
            return [index[order]]
        pages = -(-len(index) // page_records)
        slabs = max(1, round(pages ** (1.0 / (d - dim))))
        slab_records = -(-len(index) // slabs)
        order = np.argsort(points[index, dim], kind="stable")
        sorted_index = index[order]
        out: List[np.ndarray] = []
        for s in range(0, len(sorted_index), slab_records):
            out.extend(tile(sorted_index[s:s + slab_records], dim + 1))
        return out

    groups = tile(np.arange(n), 0)
    return np.concatenate(groups)


def _curve_order(points: np.ndarray, curve: str,
                 resolution: int = 1024) -> np.ndarray:
    """Permutation sorting points by a space-filling curve value."""
    pts = np.asarray(points, dtype=np.float64)
    span = pts.max(axis=0) - pts.min(axis=0)
    span[span == 0] = 1.0
    scaled = (pts - pts.min(axis=0)) / span * (resolution - 1)
    cells = normalize_cells(scaled.astype(np.int64))
    bits = max(1, required_bits(cells))
    if curve == "zorder":
        keys = morton_key_columns(cells, bits)
    elif curve == "hilbert":
        keys = hilbert_key_columns(cells, bits)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    columns = [keys[:, j] for j in range(keys.shape[1] - 1, -1, -1)]
    return np.lexsort(columns)


class RTree:
    """A bulk-loaded R-tree with disk-resident leaf pages."""

    def __init__(self, leaf_file: PointFile, page_records: int,
                 root: RTreeNode, leaf_nodes: List[RTreeNode]) -> None:
        self.leaf_file = leaf_file
        self.page_records = page_records
        self.root = root
        self.leaf_nodes = leaf_nodes

    # -- construction ---------------------------------------------------------

    @classmethod
    def bulk_load(cls, ids: np.ndarray, points: np.ndarray,
                  disk: SimulatedDisk, page_records: int,
                  fanout: int = DEFAULT_FANOUT,
                  method: str = "str") -> "RTree":
        """Build an R-tree on ``disk`` from the given points.

        ``method`` selects the packing order: ``"str"`` (default),
        ``"zorder"`` or ``"hilbert"``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        pts = np.asarray(points, dtype=np.float64)
        if len(ids) != len(pts):
            raise ValueError("ids and points differ in length")
        if len(pts) == 0:
            raise ValueError("cannot bulk-load an empty point set")
        if page_records < 1:
            raise ValueError("page_records must be at least 1")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if method == "str":
            order = _str_order(pts, page_records)
        else:
            order = _curve_order(pts, method)
        ids, pts = ids[order], pts[order]

        leaf_file = PointFile.create(disk, pts.shape[1])
        leaf_file.append(ids, pts)
        leaf_file.close()

        leaf_nodes: List[RTreeNode] = []
        for page, start in enumerate(range(0, len(pts), page_records)):
            chunk = pts[start:start + page_records]
            leaf_nodes.append(RTreeNode(mbr=MBR.of_points(chunk), level=0,
                                        leaf_page=page))
        root = cls._pack_directory(leaf_nodes, fanout)
        return cls(leaf_file, page_records, root, leaf_nodes)

    @staticmethod
    def _pack_directory(nodes: List[RTreeNode], fanout: int) -> RTreeNode:
        level = 1
        while len(nodes) > 1:
            parents: List[RTreeNode] = []
            for start in range(0, len(nodes), fanout):
                group = nodes[start:start + fanout]
                parents.append(RTreeNode(
                    mbr=union_all(n.mbr for n in group),
                    level=level, children=group))
            nodes = parents
            level += 1
        return nodes[0]

    # -- access ------------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        """Number of leaf pages."""
        return len(self.leaf_nodes)

    @property
    def height(self) -> int:
        """Levels above the leaf pages (0 for a single-page tree)."""
        return self.root.level

    def leaf_record_range(self, page: int) -> Tuple[int, int]:
        """Record range ``[first, last)`` of one leaf page."""
        first = page * self.page_records
        last = min(first + self.page_records, self.leaf_file.count)
        return first, last

    def read_leaf(self, page: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read one leaf page from disk (one access)."""
        first, last = self.leaf_record_range(page)
        return self.leaf_file.read_range(first, last - first)

    def make_leaf_pool(self, capacity: int) -> BufferPool:
        """An LRU buffer pool over the leaf pages."""
        return BufferPool(capacity, self.read_leaf)

    # -- queries -------------------------------------------------------------

    def range_query(self, center: np.ndarray, radius: float,
                    pool: Optional[BufferPool] = None) -> np.ndarray:
        """Ids of all points within ``radius`` of ``center`` (Euclidean)."""
        c = np.asarray(center, dtype=np.float64)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        r_sq = radius * radius
        hits: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr.mindist_sq_point(c) > r_sq:
                continue
            if node.is_leaf:
                if pool is not None:
                    ids, pts = pool.get(node.leaf_page)
                else:
                    ids, pts = self.read_leaf(node.leaf_page)
                diff = pts - c
                within = np.einsum("ij,ij->i", diff, diff) <= r_sq
                if within.any():
                    hits.append(ids[within])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(hits)

    def validate(self) -> None:
        """Check the directory invariants (MBR containment, levels)."""

        def check(node: RTreeNode) -> None:
            if node.is_leaf:
                ids, pts = self.read_leaf(node.leaf_page)
                actual = MBR.of_points(pts)
                if not (np.allclose(actual.low, node.mbr.low)
                        and np.allclose(actual.high, node.mbr.high)):
                    raise AssertionError(
                        f"leaf {node.leaf_page} MBR does not bound its points")
                return
            for child in node.children:
                if child.level != node.level - 1:
                    raise AssertionError("child level mismatch")
                merged = node.mbr.union(child.mbr)
                if not (np.allclose(merged.low, node.mbr.low)
                        and np.allclose(merged.high, node.mbr.high)):
                    raise AssertionError("parent MBR does not contain child")
                check(child)

        check(self.root)
