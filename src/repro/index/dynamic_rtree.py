"""Dynamic R-tree with Guttman insertion (quadratic split).

Section 2.2 of the paper: "If no multidimensional index is available,
it is possible to construct the index on the fly before starting the
join algorithm.  Usually, the dynamic index construction by repeated
insert operations performs poorly and cannot be amortized by
performance gains during join processing."  This module provides that
dynamically-built tree so the claim is testable: insertion cost is
counted (node accesses, splits, MBR enlargements), and the resulting
tree quality (leaf MBR volume, overlap) can be compared against the
bulk-loaded :class:`~repro.index.rtree.RTree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .mbr import MBR


@dataclass
class InsertStats:
    """Cost accounting of dynamic construction."""

    inserts: int = 0
    node_accesses: int = 0
    splits: int = 0


class _Node:
    """Internal node; leaves hold point entries, inner nodes hold children."""

    __slots__ = ("leaf", "entries", "mbr")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: List = []   # leaf: (id, point); inner: _Node
        self.mbr: Optional[MBR] = None

    def recompute_mbr(self) -> None:
        if self.leaf:
            pts = np.array([p for _i, p in self.entries])
            self.mbr = MBR.of_points(pts)
        else:
            box = self.entries[0].mbr
            for child in self.entries[1:]:
                box = box.union(child.mbr)
            self.mbr = box


class DynamicRTree:
    """An R-tree built by repeated insertion (Guttman, quadratic split)."""

    def __init__(self, dimensions: int, capacity: int = 16) -> None:
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.dimensions = dimensions
        self.capacity = capacity
        self.root = _Node(leaf=True)
        self.stats = InsertStats()
        self.size = 0

    # -- insertion ----------------------------------------------------------

    def insert(self, point_id: int, point: np.ndarray) -> None:
        """Insert one point (Guttman ChooseLeaf + quadratic split)."""
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.dimensions,):
            raise ValueError(
                f"point must have shape ({self.dimensions},), got {p.shape}")
        self.stats.inserts += 1
        split = self._insert_into(self.root, point_id, p)
        if split is not None:
            old_root = self.root
            self.root = _Node(leaf=False)
            self.root.entries = [old_root, split]
            self.root.recompute_mbr()
        self.size += 1

    def _insert_into(self, node: _Node, point_id: int,
                     p: np.ndarray) -> Optional[_Node]:
        self.stats.node_accesses += 1
        if node.leaf:
            node.entries.append((point_id, p))
            node.recompute_mbr()
            if len(node.entries) > self.capacity:
                return self._split(node)
            return None
        child = self._choose_child(node, p)
        split = self._insert_into(child, point_id, p)
        if split is not None:
            node.entries.append(split)
        node.recompute_mbr()
        if len(node.entries) > self.capacity:
            return self._split(node)
        return None

    def _choose_child(self, node: _Node, p: np.ndarray) -> _Node:
        """Child whose MBR needs least enlargement (ties: smaller volume)."""
        best, best_key = None, None
        for child in node.entries:
            low = np.minimum(child.mbr.low, p)
            high = np.maximum(child.mbr.high, p)
            enlargement = float(np.prod(high - low)) - child.mbr.volume()
            key = (enlargement, child.mbr.volume())
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _entry_mbr(self, node: _Node, i: int) -> MBR:
        if node.leaf:
            _id, p = node.entries[i]
            return MBR(p, p)
        return node.entries[i].mbr

    def _split(self, node: _Node) -> _Node:
        """Guttman's quadratic split; returns the new sibling."""
        self.stats.splits += 1
        entries = node.entries
        boxes = [self._entry_mbr(node, i) for i in range(len(entries))]

        # Pick seeds: the pair wasting the most area together.
        worst, seeds = -1.0, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = boxes[i].union(boxes[j])
                waste = union.volume() - boxes[i].volume() \
                    - boxes[j].volume()
                if waste > worst:
                    worst, seeds = waste, (i, j)
        group_a, group_b = [seeds[0]], [seeds[1]]
        box_a, box_b = boxes[seeds[0]], boxes[seeds[1]]
        rest = [i for i in range(len(entries)) if i not in seeds]
        min_fill = max(1, self.capacity // 2)
        for i in rest:
            if len(group_a) + (len(rest) - rest.index(i)) <= min_fill:
                group_a.append(i)
                box_a = box_a.union(boxes[i])
                continue
            if len(group_b) + (len(rest) - rest.index(i)) <= min_fill:
                group_b.append(i)
                box_b = box_b.union(boxes[i])
                continue
            grow_a = box_a.union(boxes[i]).volume() - box_a.volume()
            grow_b = box_b.union(boxes[i]).volume() - box_b.volume()
            if (grow_a, len(group_a)) <= (grow_b, len(group_b)):
                group_a.append(i)
                box_a = box_a.union(boxes[i])
            else:
                group_b.append(i)
                box_b = box_b.union(boxes[i])

        sibling = _Node(leaf=node.leaf)
        sibling.entries = [entries[i] for i in group_b]
        node.entries = [entries[i] for i in group_a]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # -- queries ----------------------------------------------------------

    def range_query(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Ids of all points within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        c = np.asarray(center, dtype=np.float64)
        r_sq = radius * radius
        hits: List[int] = []
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if node.mbr is not None and \
                    node.mbr.mindist_sq_point(c) > r_sq:
                continue
            if node.leaf:
                for point_id, p in node.entries:
                    diff = p - c
                    if float(np.dot(diff, diff)) <= r_sq:
                        hits.append(point_id)
            else:
                stack.extend(node.entries)
        return np.array(sorted(hits), dtype=np.int64)

    # -- quality metrics ---------------------------------------------------

    def leaves(self) -> List[_Node]:
        """All leaf nodes."""
        out, stack = [], [self.root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.append(node)
            else:
                stack.extend(node.entries)
        return out

    def total_leaf_volume(self) -> float:
        """Sum of leaf MBR volumes (lower = tighter packing)."""
        return sum(leaf.mbr.volume() for leaf in self.leaves()
                   if leaf.mbr is not None)

    def height(self) -> int:
        """Tree height (1 for a root-only tree)."""
        h, node = 1, self.root
        while not node.leaf:
            h += 1
            node = node.entries[0]
        return h

    def validate(self) -> None:
        """Check MBR containment and leaf levels."""

        def check(node: _Node) -> int:
            if node.leaf:
                for _i, p in node.entries:
                    assert node.mbr.contains_point(p)
                return 1
            depths = set()
            for child in node.entries:
                merged = node.mbr.union(child.mbr)
                assert np.allclose(merged.low, node.mbr.low)
                assert np.allclose(merged.high, node.mbr.high)
                depths.add(check(child))
            assert len(depths) == 1, "unbalanced tree"
            return depths.pop() + 1

        if self.size:
            check(self.root)
