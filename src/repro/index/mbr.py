"""Minimum bounding rectangles and distance geometry.

The index-based competitor joins (RSJ, Z-Order-RSJ, MuX) rely on the
*lower bounding property*: the distance between two points is never
smaller than the minimum distance between the MBRs of the pages that
store them [BKS 93].  This module provides the MBR algebra those joins
need, in both scalar and batched (vectorised) form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class MBR:
    """An axis-parallel minimum bounding rectangle."""

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64)
        high = np.asarray(self.high, dtype=np.float64)
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)
        if low.shape != high.shape:
            raise ValueError("low/high shape mismatch")
        if (low > high).any():
            raise ValueError("MBR low bound exceeds high bound")

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """Tightest MBR enclosing a non-empty point set."""
        pts = np.asarray(points, dtype=np.float64)
        if len(pts) == 0:
            raise ValueError("cannot bound an empty point set")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @property
    def dimensions(self) -> int:
        """Dimensionality of the rectangle."""
        return len(self.low)

    @property
    def center(self) -> np.ndarray:
        """Geometric centre of the rectangle."""
        return (self.low + self.high) / 2.0

    def volume(self) -> float:
        """Product of the side lengths."""
        return float(np.prod(self.high - self.low))

    def margin(self) -> float:
        """Sum of the side lengths (the R*-tree margin measure)."""
        return float(np.sum(self.high - self.low))

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR enclosing both rectangles."""
        return MBR(np.minimum(self.low, other.low),
                   np.maximum(self.high, other.high))

    def contains_point(self, point: np.ndarray) -> bool:
        """True when the point lies inside (boundary included)."""
        p = np.asarray(point, dtype=np.float64)
        return bool((p >= self.low).all() and (p <= self.high).all())

    def intersects(self, other: "MBR") -> bool:
        """True when the rectangles share at least a boundary point."""
        return bool((self.low <= other.high).all()
                    and (other.low <= self.high).all())

    def mindist_sq(self, other: "MBR") -> float:
        """Squared minimum distance between the two rectangles (0 if overlapping)."""
        gap = np.maximum(0.0, np.maximum(self.low - other.high,
                                         other.low - self.high))
        return float(np.dot(gap, gap))

    def mindist_sq_point(self, point: np.ndarray) -> float:
        """Squared minimum distance from the rectangle to a point."""
        p = np.asarray(point, dtype=np.float64)
        gap = np.maximum(0.0, np.maximum(self.low - p, p - self.high))
        return float(np.dot(gap, gap))

    def maxdist_sq_point(self, point: np.ndarray) -> float:
        """Squared maximum distance from the rectangle to a point."""
        p = np.asarray(point, dtype=np.float64)
        far = np.maximum(np.abs(p - self.low), np.abs(p - self.high))
        return float(np.dot(far, far))

    def enlarged(self, radius: float) -> "MBR":
        """The rectangle extended by ``radius`` on every side (Minkowski sum)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return MBR(self.low - radius, self.high + radius)


def union_all(mbrs: Iterable[MBR]) -> MBR:
    """Smallest MBR enclosing every rectangle of a non-empty iterable."""
    it = iter(mbrs)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("cannot union an empty iterable of MBRs") from None
    for m in it:
        acc = acc.union(m)
    return acc


def mindist_sq_batch(lows_a: np.ndarray, highs_a: np.ndarray,
                     lows_b: np.ndarray, highs_b: np.ndarray) -> np.ndarray:
    """Pairwise squared mindist matrix between two batches of MBRs.

    ``lows_a``/``highs_a`` have shape ``(na, d)``; the result has shape
    ``(na, nb)``.
    """
    gap = np.maximum(
        0.0,
        np.maximum(lows_a[:, None, :] - highs_b[None, :, :],
                   lows_b[None, :, :] - highs_a[:, None, :]))
    return np.einsum("ijk,ijk->ij", gap, gap)


def mindist_sq_point_batch(low: np.ndarray, high: np.ndarray,
                           points: np.ndarray) -> np.ndarray:
    """Squared mindist from one MBR to each point of a batch."""
    gap = np.maximum(0.0, np.maximum(low[None, :] - points,
                                     points - high[None, :]))
    return np.einsum("ij,ij->i", gap, gap)
