"""Index substrate: MBR geometry, R-tree, Multipage Index, ε-kdB-tree,
p-stable LSH."""

from .dynamic_rtree import DynamicRTree, InsertStats
from .epskdb import (EpsKdbCacheError, EpsKdbNode, StripedDataset,
                     build_tree)
from .lsh import (DEFAULT_K, DEFAULT_W_SCALE, MAX_TABLES,
                  PStableHashFamily, collision_probability, sort_by_keys)
from .mbr import (MBR, mindist_sq_batch, mindist_sq_point_batch, union_all)
from .msj import (LevelFile, LevelFiles, cell_at_level,
                  level_zero_probability, point_levels)
from .mux import Bucket, HostingPage, MultipageIndex
from .rtree import DEFAULT_FANOUT, RTree, RTreeNode

__all__ = [
    "Bucket",
    "DynamicRTree",
    "InsertStats",
    "LevelFile",
    "LevelFiles",
    "cell_at_level",
    "level_zero_probability",
    "point_levels",
    "DEFAULT_FANOUT",
    "DEFAULT_K",
    "DEFAULT_W_SCALE",
    "MAX_TABLES",
    "PStableHashFamily",
    "collision_probability",
    "sort_by_keys",
    "EpsKdbCacheError",
    "EpsKdbNode",
    "HostingPage",
    "MBR",
    "MultipageIndex",
    "RTree",
    "RTreeNode",
    "StripedDataset",
    "build_tree",
    "mindist_sq_batch",
    "mindist_sq_point_batch",
    "union_all",
]
