"""The ε-kdB-tree of [SSA 97].

The data set is partitioned perpendicular to dimension 0 into stripes of
width ε, restricting the join to pairs of identical or subsequent
stripes.  Within a stripe, an in-memory ε-kdB-tree partitions the
remaining dimensions, one per level, into ε-wide cells until a node
capacity is reached; tree matching then only descends into identical or
neighboring cells.

The paper criticises the approach (Section 2.2): the join assumes two
adjacent stripes fit in the cache, and on real distributions the largest
stripe pair can be a substantial fraction of the whole database.  This
implementation measures exactly that fraction and, matching the reported
behaviour, refuses to run when the required stripe pair exceeds the
cache (unless forced), which the buffer ablation benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


class EpsKdbCacheError(RuntimeError):
    """Raised when two adjacent stripes do not fit in the cache."""


@dataclass
class EpsKdbNode:
    """One node of the in-memory ε-kdB-tree of a stripe.

    A leaf holds point row indices; an internal node partitions its
    points by the ε-cell of ``split_dim``.
    """

    depth: int
    indices: Optional[np.ndarray] = None
    split_dim: Optional[int] = None
    children: Dict[int, "EpsKdbNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True when the node stores points directly."""
        return self.indices is not None

    def size(self) -> int:
        """Number of points below this node."""
        if self.is_leaf:
            return len(self.indices)
        return sum(child.size() for child in self.children.values())


def build_tree(points: np.ndarray, indices: np.ndarray, epsilon: float,
               capacity: int, depth: int = 1) -> EpsKdbNode:
    """Recursively build the ε-kdB-tree of one stripe.

    ``depth`` doubles as the partition dimension: the stripe itself
    consumed dimension 0, levels below partition dimensions 1, 2, ….
    Recursion stops at the node ``capacity`` or when every dimension has
    been partitioned once, as in [SSA 97].
    """
    d = points.shape[1]
    if len(indices) <= capacity or depth >= d:
        return EpsKdbNode(depth=depth, indices=indices)
    cells = np.floor(points[indices, depth] / epsilon).astype(np.int64)
    node = EpsKdbNode(depth=depth, split_dim=depth)
    for cell in np.unique(cells):
        sub = indices[cells == cell]
        node.children[int(cell)] = build_tree(points, sub, epsilon,
                                              capacity, depth + 1)
    return node


class StripedDataset:
    """A point set partitioned into ε-stripes along dimension 0."""

    def __init__(self, ids: np.ndarray, points: np.ndarray,
                 epsilon: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        ids = np.asarray(ids, dtype=np.int64)
        pts = np.asarray(points, dtype=np.float64)
        stripe_of = np.floor(pts[:, 0] / epsilon).astype(np.int64)
        order = np.argsort(stripe_of, kind="stable")
        self.ids = ids[order]
        self.points = pts[order]
        self.epsilon = float(epsilon)
        stripes = stripe_of[order]
        self.stripe_keys, starts = np.unique(stripes, return_index=True)
        bounds = list(starts) + [len(pts)]
        self.stripe_ranges: List[Tuple[int, int]] = [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(self.stripe_keys))]

    @property
    def num_stripes(self) -> int:
        """Number of non-empty stripes."""
        return len(self.stripe_keys)

    def stripe_size(self, i: int) -> int:
        """Number of points in the i-th non-empty stripe."""
        first, last = self.stripe_ranges[i]
        return last - first

    def stripe_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, points)`` views of the i-th non-empty stripe."""
        first, last = self.stripe_ranges[i]
        return self.ids[first:last], self.points[first:last]

    def adjacent(self, i: int, j: int) -> bool:
        """True when stripes i and j are identical or subsequent."""
        return abs(int(self.stripe_keys[i]) - int(self.stripe_keys[j])) <= 1

    def max_pair_fraction(self) -> float:
        """Largest fraction of the data set two adjacent stripes occupy.

        This is the cache requirement the paper criticises: [BK 01]
        measured about 60 % for 8-dimensional artificial data and stripes
        of 35 % for real meteorology data.
        """
        n = len(self.ids)
        if n == 0:
            return 0.0
        worst = max(self.stripe_size(i) for i in range(self.num_stripes))
        for i in range(self.num_stripes - 1):
            if self.adjacent(i, i + 1):
                worst = max(worst,
                            self.stripe_size(i) + self.stripe_size(i + 1))
        return worst / n

    def check_cache(self, cache_records: int) -> None:
        """Raise :class:`EpsKdbCacheError` if a stripe pair exceeds the cache."""
        n = len(self.ids)
        worst = int(round(self.max_pair_fraction() * n))
        if worst > cache_records:
            raise EpsKdbCacheError(
                f"adjacent stripes need {worst} records in cache but only "
                f"{cache_records} are available "
                f"({worst / max(n, 1):.0%} of the database)")

    def max_quad_fraction(self) -> float:
        """Cache requirement of the multi-scan extension of [SSA 97].

        The paper: "the authors of the ε-kdB-tree have also proposed an
        extension … which does not perform a single database scan but
        reads parts of the database multiple times according to a
        complex scheduling pattern.  Applying this extension, however,
        reduced the required cache size merely from 60 % to 36 %."

        The extension sub-partitions each stripe at dimension 1 into
        ε-columns and schedules over 2 × 2 adjacent blocks; the resident
        requirement is therefore the largest such quad, measured here as
        a fraction of the database.
        """
        n = len(self.ids)
        if n == 0:
            return 0.0
        # Occupancy per (stripe, dim-1 cell).
        from collections import Counter
        quad: Counter = Counter()
        for i in range(self.num_stripes):
            _ids, pts = self.stripe_slice(i)
            cols = np.floor(pts[:, 1] / self.epsilon).astype(np.int64) \
                if pts.shape[1] > 1 else np.zeros(len(pts), dtype=np.int64)
            key0 = int(self.stripe_keys[i])
            for c, cnt in zip(*np.unique(cols, return_counts=True)):
                quad[(key0, int(c))] = int(cnt)
        worst = 0
        for (s, c), _cnt in quad.items():
            total = sum(quad.get((s + ds, c + dc), 0)
                        for ds in (0, 1) for dc in (0, 1))
            worst = max(worst, total)
        return worst / n
