"""The Multipage Index (MuX) of [BK 01].

MuX decouples the page-size optimisation conflict between I/O and CPU:
large **hosting pages** (optimised for disk transfer) accommodate many
small **buckets** (optimised for CPU) whose MBRs are stored inside the
hosting page.  A join loads hosting pages (few, large I/Os) but compares
points only between bucket pairs whose MBR mindist is within ε (little
CPU).

The paper notes the storage overhead of the accommodated buckets: every
bucket MBR occupies room in its hosting page, so decreasing the bucket
capacity for CPU performance costs data capacity.  The bulk loader
charges that overhead by reducing the records per page accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..storage.buffer import BufferPool
from ..storage.disk import SimulatedDisk
from ..storage.pagefile import PointFile
from .mbr import MBR, union_all
from .rtree import RTreeNode, RTree, _curve_order, DEFAULT_FANOUT


@dataclass
class Bucket:
    """A CPU-optimised bucket: a record range inside its hosting page."""

    first: int
    last: int
    mbr: MBR

    def __len__(self) -> int:
        return self.last - self.first


@dataclass
class HostingPage:
    """An I/O-optimised page holding several buckets."""

    page_no: int
    first: int
    last: int
    mbr: MBR
    buckets: List[Bucket] = field(default_factory=list)
    bucket_lows: np.ndarray = None
    bucket_highs: np.ndarray = None

    def __len__(self) -> int:
        return self.last - self.first


class MultipageIndex:
    """A bulk-loaded Multipage Index with disk-resident hosting pages."""

    def __init__(self, leaf_file: PointFile, pages: List[HostingPage],
                 root: RTreeNode, records_per_page: int) -> None:
        self.leaf_file = leaf_file
        self.pages = pages
        self.root = root
        self.records_per_page = records_per_page

    @classmethod
    def bulk_load(cls, ids: np.ndarray, points: np.ndarray,
                  disk: SimulatedDisk, page_bytes: int, bucket_records: int,
                  fanout: int = DEFAULT_FANOUT,
                  order: str = "zorder") -> "MultipageIndex":
        """Build a MuX on ``disk``.

        ``page_bytes`` is the hosting page size; the number of point
        records per page is reduced by the space the accommodated bucket
        MBRs take (two ``d``-dimensional float vectors per bucket).
        """
        ids = np.asarray(ids, dtype=np.int64)
        pts = np.asarray(points, dtype=np.float64)
        if len(pts) == 0:
            raise ValueError("cannot bulk-load an empty point set")
        if bucket_records < 1:
            raise ValueError("bucket_records must be at least 1")
        d = pts.shape[1]
        record_bytes = 8 * (d + 1)
        mbr_bytes = 2 * 8 * d
        # records r and buckets ceil(r / bucket_records) must fit the page:
        # r * record_bytes + ceil(r / b) * mbr_bytes <= page_bytes.
        per_record = record_bytes + mbr_bytes / bucket_records
        records_per_page = int(page_bytes / per_record)
        if records_per_page < 1:
            raise ValueError(
                f"page of {page_bytes} bytes cannot hold any "
                f"{record_bytes}-byte record plus bucket MBRs")

        perm = _curve_order(pts, order) if order != "none" else np.arange(len(pts))
        ids, pts = ids[perm], pts[perm]

        leaf_file = PointFile.create(disk, d)
        leaf_file.append(ids, pts)
        leaf_file.close()

        pages: List[HostingPage] = []
        for page_no, start in enumerate(range(0, len(pts), records_per_page)):
            end = min(start + records_per_page, len(pts))
            buckets = []
            for b_start in range(start, end, bucket_records):
                b_end = min(b_start + bucket_records, end)
                buckets.append(Bucket(b_start, b_end,
                                      MBR.of_points(pts[b_start:b_end])))
            page = HostingPage(
                page_no=page_no, first=start, last=end,
                mbr=union_all(b.mbr for b in buckets), buckets=buckets)
            page.bucket_lows = np.array([b.mbr.low for b in buckets])
            page.bucket_highs = np.array([b.mbr.high for b in buckets])
            pages.append(page)

        leaf_nodes = [RTreeNode(mbr=p.mbr, level=0, leaf_page=p.page_no)
                      for p in pages]
        root = RTree._pack_directory(leaf_nodes, fanout)
        return cls(leaf_file, pages, root, records_per_page)

    @property
    def num_pages(self) -> int:
        """Number of hosting pages."""
        return len(self.pages)

    def read_page(self, page_no: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read one hosting page from disk (one large access)."""
        page = self.pages[page_no]
        return self.leaf_file.read_range(page.first, len(page))

    def make_page_pool(self, capacity: int) -> BufferPool:
        """An LRU buffer pool over the hosting pages."""
        return BufferPool(capacity, self.read_page)

    def storage_overhead_fraction(self) -> float:
        """Fraction of page space spent on accommodated bucket MBRs."""
        d = self.leaf_file.dimensions
        record_bytes = 8 * (d + 1)
        mbr_bytes = 2 * 8 * d
        data = sum(len(p) for p in self.pages) * record_bytes
        overhead = sum(len(p.buckets) for p in self.pages) * mbr_bytes
        return overhead / (data + overhead)
