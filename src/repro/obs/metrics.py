"""Typed run-metrics registry with Prometheus-text and JSON exporters.

The paper's claims are operation-count claims (units read once in gallop
mode, the ε-interval re-read once per crabstep window, leaf work cut by
inactive-dimension pruning), so every metric here is a *structural*
quantity — counts of loads, prunes, pins, candidate rows — never a wall
time.  That is what makes a metrics dump exactly reproducible: the same
seeded workload produces byte-identical exports across runs and across
``workers=1`` vs ``workers=N`` (worker deltas are merged in schedule
order, see :class:`~repro.core.parallel.ParallelUnitJoiner`).

Three instrument kinds:

* :class:`Counter` — monotonically increasing, optionally labelled
  (e.g. ``ego_unit_reads_total{mode="gallop"}``);
* :class:`Gauge` — a point-in-time value set at the end of a run
  (e.g. ``ego_io_bytes_read``);
* :class:`Histogram` — fixed-bucket distribution (candidate-window
  sizes, leaf volumes); bucket bounds are part of the metric identity so
  merged exports stay stable.

Everything is plain Python with no third-party dependencies.  The
**null recorder** (:data:`NULL_METRICS`) implements the same interface
as no-ops on shared singletons, so instrumented hot paths cost one
attribute lookup and an empty method call when observability is off —
and allocate nothing.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NullMetrics", "NULL_METRICS", "ensure_metrics",
]


def _format_value(value) -> str:
    """Deterministic Prometheus sample formatting (ints without dot)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, values))
    return "{" + inner + "}"


class _Child:
    """One labelled series of a counter/gauge family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value) -> None:
        self.value = value


class _Family:
    """Common machinery of a named, optionally labelled metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, *values) -> _Child:
        """The child series for one label-value tuple (created on demand)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label(s), "
                f"got {len(key)}")
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _Child()
        return child

    def _default(self) -> _Child:
        child = self._children.get(())
        if child is None:
            if self.labelnames:
                raise ValueError(
                    f"{self.name} is labelled {self.labelnames}; "
                    f"use .labels(...)")
            child = self._children[()] = _Child()
        return child

    @property
    def value(self):
        """Value of the unlabelled series (0 if never touched)."""
        child = self._children.get(())
        return 0 if child is None else child.value

    def value_of(self, *label_values):
        """Value of one labelled series (0 if never touched)."""
        key = tuple(str(v) for v in label_values)
        child = self._children.get(key)
        return 0 if child is None else child.value

    def total(self):
        """Sum over every series of the family."""
        return sum(c.value for c in self._children.values())

    # -- serialisation -----------------------------------------------------

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, value) pairs sorted by label values."""
        return [(key, child.value)
                for key, child in sorted(self._children.items())]

    def to_data(self) -> dict:
        return {"kind": self.kind, "help": self.help, "unit": self.unit,
                "labelnames": list(self.labelnames),
                "samples": [[list(k), v] for k, v in self.samples()]}

    def merge_data(self, data: dict) -> None:
        for key, value in data["samples"]:
            child = self.labels(*key)
            if self.kind == "gauge":
                child.set(value)
            else:
                child.inc(value)


class Counter(_Family):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        self._default().inc(amount)


class Gauge(_Family):
    """A point-in-time value, optionally labelled."""

    kind = "gauge"

    def set(self, value) -> None:
        self._default().set(value)

    def inc(self, amount=1) -> None:
        self._default().inc(amount)


#: Default histogram bucket bounds: powers of two covering the row/point
#: counts the join's leaves and candidate windows actually take.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)


class Histogram:
    """Fixed-bucket distribution with cumulative Prometheus exposition."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.labelnames: Tuple[str, ...] = ()
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def observe_many(self, values: Iterable) -> None:
        """Record a batch of observations."""
        for v in values:
            self.observe(v)

    def quantile_bound(self, q: float):
        """Upper bucket bound below which fraction ``q`` of samples fall."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0
        target = q * self.count
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            cumulative += self.bucket_counts[i]
            if cumulative >= target:
                return bound
        return float("inf")

    # -- serialisation -----------------------------------------------------

    def to_data(self) -> dict:
        return {"kind": self.kind, "help": self.help, "unit": self.unit,
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count, "sum": self.sum}

    def merge_data(self, data: dict) -> None:
        if list(data["bounds"]) != list(self.bounds):
            raise ValueError(
                f"histogram {self.name}: merged bounds {data['bounds']} "
                f"differ from {list(self.bounds)}")
        for i, c in enumerate(data["bucket_counts"]):
            self.bucket_counts[i] += c
        self.count += data["count"]
        self.sum += data["sum"]


class MetricsRegistry:
    """A namespace of counters, gauges and histograms for one run.

    Instruments are created on first request and returned on every
    subsequent one (idempotent, so layers can resolve handles
    independently).  Exports are sorted by metric name and label values,
    which — together with the structural-only metric policy — makes the
    Prometheus text and JSON dumps byte-identical for identical runs.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, help: str, unit: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help=help, unit=unit,
                                               **kwargs)
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}")
        return metric

    def counter(self, name: str, help: str = "", unit: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter family."""
        return self._get(Counter, name, help, unit, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", unit: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._get(Gauge, name, help, unit, labelnames=labelnames)

    def histogram(self, name: str, help: str = "", unit: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, help, unit, buckets=buckets)

    def get(self, name: str):
        """The registered metric of that name, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    # -- worker-delta merging ----------------------------------------------

    def collect(self) -> dict:
        """Serializable snapshot of every metric (used as a worker delta)."""
        return {name: m.to_data()
                for name, m in sorted(self._metrics.items())}

    def merge(self, data: Optional[dict]) -> None:
        """Fold a :meth:`collect` snapshot into this registry.

        Counters and histograms add; gauges take the merged value.  The
        parallel joiner calls this in task-submission order, so the
        merged registry is identical whichever workers computed the
        deltas.
        """
        if not data:
            return
        for name, payload in sorted(data.items()):
            kind = payload["kind"]
            if kind == "histogram":
                metric = self.histogram(name, help=payload["help"],
                                        unit=payload["unit"],
                                        buckets=payload["bounds"])
            elif kind == "gauge":
                metric = self.gauge(name, help=payload["help"],
                                    unit=payload["unit"],
                                    labelnames=payload["labelnames"])
            else:
                metric = self.counter(name, help=payload["help"],
                                      unit=payload["unit"],
                                      labelnames=payload["labelnames"])
            metric.merge_data(payload)

    # -- exporters ---------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus exposition-format text (no timestamps, stable order)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            help_text = metric.help
            if metric.unit:
                help_text = (f"{help_text} [{metric.unit}]" if help_text
                             else f"[{metric.unit}]")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds,
                                        metric.bucket_counts):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{_format_value(bound)}"}} '
                        f"{cumulative}")
                cumulative += metric.bucket_counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {_format_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                for key, value in metric.samples():
                    labels = _format_labels(metric.labelnames, key)
                    lines.append(f"{name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> dict:
        """Nested-dict form of every metric (stable key order)."""
        return self.collect()

    def dump(self, path: str) -> None:
        """Write the registry to ``path``: ``.json`` → JSON, else Prometheus."""
        if path.endswith(".json"):
            with open(path, "w") as fh:
                json.dump(self.to_json(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        else:
            with open(path, "w") as fh:
                fh.write(self.to_prometheus_text())


# -- the null recorder -------------------------------------------------------


class _NullInstrument:
    """Shared no-op counter/gauge/histogram (allocates nothing per call)."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0

    def labels(self, *values) -> "_NullInstrument":
        return self

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def value_of(self, *label_values) -> int:
        return 0

    def total(self) -> int:
        return 0


#: The one instance every :class:`NullMetrics` method returns.
NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """No-op registry: the default recorder when observability is off.

    Every factory method returns the shared :data:`NULL_INSTRUMENT`, so
    instrumented code paths neither branch nor allocate.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str, help: str = "", unit: str = "",
                labelnames: Sequence[str] = ()) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", unit: str = "",
              labelnames: Sequence[str] = ()) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", unit: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def collect(self) -> dict:
        return {}

    def merge(self, data) -> None:
        pass

    def to_prometheus_text(self) -> str:
        return ""

    def to_json(self) -> dict:
        return {}


#: Module-level null registry shared by every uninstrumented run.
NULL_METRICS = NullMetrics()


def ensure_metrics(metrics) -> object:
    """Coerce an optional registry argument to a usable recorder."""
    return NULL_METRICS if metrics is None else metrics
