"""Opt-in profiling hooks: per-phase wall/CPU time and cProfile capture.

Tracing (:mod:`.trace`) answers *when* things happened; metrics
(:mod:`.metrics`) answer *how many*; this module answers *where the
process time went*.  A :class:`PhaseProfiler` accumulates wall-clock
(``perf_counter``) and CPU (``process_time``) seconds per named phase —
``sort`` and ``schedule`` for the external pipeline — and can optionally
run each phase under :mod:`cProfile`, keeping the capture of the phase
that used the most CPU for a hotspot report.

Profiling numbers are inherently nondeterministic, so they never enter
the metrics registry (whose exports must be byte-identical across runs);
the profiler has its own report.

The **null profiler** (:data:`NULL_PROFILER`) makes every hook a no-op
on a shared singleton, mirroring the null tracer and null metrics.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Dict, List, Optional

__all__ = ["PhaseProfiler", "PhaseTimes", "NullProfiler", "NULL_PROFILER",
           "ensure_profiler"]


class PhaseTimes:
    """Accumulated timings of one named phase."""

    __slots__ = ("name", "wall_s", "cpu_s", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.calls = 0


class _PhaseContext:
    """Context manager timing one phase entry (with optional cProfile)."""

    __slots__ = ("profiler", "times", "wall0", "cpu0", "capture")

    def __init__(self, profiler: "PhaseProfiler", times: PhaseTimes) -> None:
        self.profiler = profiler
        self.times = times
        self.capture: Optional[cProfile.Profile] = None

    def __enter__(self) -> "_PhaseContext":
        if self.profiler.capture_hotspot:
            self.capture = cProfile.Profile()
            self.capture.enable()
        self.wall0 = time.perf_counter()
        self.cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        wall = time.perf_counter() - self.wall0
        cpu = time.process_time() - self.cpu0
        if self.capture is not None:
            self.capture.disable()
        t = self.times
        t.wall_s += wall
        t.cpu_s += cpu
        t.calls += 1
        self.profiler._phase_done(t, cpu, self.capture)


class PhaseProfiler:
    """Per-phase wall/CPU accounting with optional hotspot capture.

    Parameters
    ----------
    capture_hotspot:
        Run each phase under :mod:`cProfile` and keep the capture of the
        phase entry that burned the most CPU seconds.  Adds real
        overhead; leave off unless hunting a hotspot.
    """

    enabled = True

    def __init__(self, capture_hotspot: bool = False) -> None:
        self.capture_hotspot = capture_hotspot
        self.phases: Dict[str, PhaseTimes] = {}
        self._order: List[str] = []
        self._hotspot_cpu = -1.0
        self._hotspot_name: Optional[str] = None
        self._hotspot_profile: Optional[cProfile.Profile] = None

    def phase(self, name: str) -> _PhaseContext:
        """Time one phase entry: ``with profiler.phase("sort"): ...``."""
        times = self.phases.get(name)
        if times is None:
            times = self.phases[name] = PhaseTimes(name)
            self._order.append(name)
        return _PhaseContext(self, times)

    def _phase_done(self, times: PhaseTimes, cpu: float,
                    capture: Optional[cProfile.Profile]) -> None:
        if capture is not None and cpu > self._hotspot_cpu:
            self._hotspot_cpu = cpu
            self._hotspot_name = times.name
            self._hotspot_profile = capture

    # -- reporting ---------------------------------------------------------

    def report(self) -> List[dict]:
        """Per-phase rows in first-use order."""
        return [{"phase": name,
                 "wall_s": self.phases[name].wall_s,
                 "cpu_s": self.phases[name].cpu_s,
                 "calls": self.phases[name].calls}
                for name in self._order]

    def hottest_phase(self) -> Optional[str]:
        """Name of the phase with the largest accumulated CPU time."""
        if not self.phases:
            return None
        return max(self._order, key=lambda n: self.phases[n].cpu_s)

    def hotspot_stats(self, limit: int = 20) -> Optional[str]:
        """pstats text of the captured hottest phase (None if not captured)."""
        if self._hotspot_profile is None:
            return None
        buf = io.StringIO()
        stats = pstats.Stats(self._hotspot_profile, stream=buf)
        stats.sort_stats("cumulative").print_stats(limit)
        return (f"hottest phase: {self._hotspot_name} "
                f"({self._hotspot_cpu:.3f}s cpu)\n" + buf.getvalue())

    def format_table(self) -> str:
        """Human-readable per-phase table."""
        rows = self.report()
        if not rows:
            return "no phases recorded"
        width = max(len(r["phase"]) for r in rows)
        lines = [f"{'phase'.ljust(width)}  {'wall_s':>9}  {'cpu_s':>9}  "
                 f"{'calls':>6}"]
        for r in rows:
            lines.append(f"{r['phase'].ljust(width)}  {r['wall_s']:9.4f}  "
                         f"{r['cpu_s']:9.4f}  {r['calls']:6d}")
        return "\n".join(lines)


class NullProfiler:
    """No-op profiler sharing one null phase context."""

    __slots__ = ()
    enabled = False

    class _NullPhase:
        __slots__ = ()

        def __enter__(self):
            return self

        def __exit__(self, *exc) -> None:
            pass

    _PHASE = _NullPhase()

    def phase(self, name: str) -> "_NullPhase":
        return self._PHASE

    def report(self) -> List[dict]:
        return []

    def hottest_phase(self) -> None:
        return None

    def hotspot_stats(self, limit: int = 20) -> None:
        return None

    def format_table(self) -> str:
        return "no phases recorded"


#: Module-level null profiler shared by every unprofiled run.
NULL_PROFILER = NullProfiler()


def ensure_profiler(profiler) -> object:
    """Coerce an optional profiler argument to a usable recorder."""
    return NULL_PROFILER if profiler is None else profiler
