"""Hierarchical span tracing in Chrome ``trace_event`` format.

A :class:`Tracer` records complete-duration spans (``"ph": "X"``) with
monotonic timestamps; the dump loads straight into ``chrome://tracing``
or Perfetto.  The pipeline emits one span hierarchy per phase::

    external_self_join
    ├── sort
    │   ├── run_generation
    │   └── merge_pass
    └── schedule
        ├── load          (one per physical unit read)
        └── unit_pair
            └── sequence_join
                └── leaf  (one per leaf kernel call)

Span nesting is positional: a span opened while another is open becomes
its child, per thread.  Pids and tids are stable small integers (pid is
always 1; tids are allocated in order of first use), so traces diff
cleanly.  Timestamps come from ``time.perf_counter_ns`` and are
monotonic, which guarantees non-negative durations.

With ``workers > 1`` the unit-pair compute happens in worker processes,
which run with the null tracer; the parent's ``unit_pair`` spans then
cover task submission and in-order merging, and the ``load`` spans keep
describing the one I/O stream there is.

The **null tracer** (:data:`NULL_TRACER`) returns one shared no-op
context manager from every :meth:`~Tracer.span` call, so disabled
tracing allocates no span objects at all.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "ensure_tracer"]

#: The one pid every event carries (the simulated pipeline is one process;
#: worker processes do not trace).
TRACE_PID = 1


class Span:
    """An open span; use as a context manager (returned by ``Tracer.span``)."""

    __slots__ = ("tracer", "name", "cat", "args", "tid", "start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.tid = tracer._tid()
        self.start_ns = time.perf_counter_ns()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.tracer._finish(self)


class Tracer:
    """Collects spans and instant events for one pipeline run."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._t0_ns = time.perf_counter_ns()
        self._tids: Dict[int, int] = {}
        self._lock = threading.Lock()

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids) + 1)
        return tid

    def _us(self, t_ns: int) -> float:
        return (t_ns - self._t0_ns) / 1000.0

    def span(self, name: str, cat: str = "join",
             args: Optional[dict] = None) -> Span:
        """Open a span; close it by exiting the returned context manager."""
        return Span(self, name, cat, args)

    def _finish(self, span: Span) -> None:
        end_ns = time.perf_counter_ns()
        event = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "pid": TRACE_PID,
            "tid": span.tid,
            "ts": self._us(span.start_ns),
            "dur": (end_ns - span.start_ns) / 1000.0,
        }
        if span.args:
            event["args"] = span.args
        self.events.append(event)

    def instant(self, name: str, cat: str = "join",
                args: Optional[dict] = None) -> None:
        """Record a zero-duration marker event."""
        event = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "pid": TRACE_PID,
            "tid": self._tid(),
            "ts": self._us(time.perf_counter_ns()),
            "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }

    def dump(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")

    def spans(self, name: Optional[str] = None) -> List[dict]:
        """Complete ("X") events, optionally filtered by span name."""
        return [e for e in self.events
                if e["ph"] == "X" and (name is None or e["name"] == name)]


class _NullSpan:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: The one span object every :class:`NullTracer` call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: every ``span()`` returns the shared null span."""

    __slots__ = ()
    enabled = False
    events: List[dict] = []

    def span(self, name: str, cat: str = "join",
             args: Optional[dict] = None) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, cat: str = "join",
                args: Optional[dict] = None) -> None:
        pass

    def to_chrome(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def spans(self, name: Optional[str] = None) -> List[dict]:
        return []


#: Module-level null tracer shared by every untraced run.
NULL_TRACER = NullTracer()


def ensure_tracer(trace) -> object:
    """Coerce an optional tracer argument to a usable recorder."""
    return NULL_TRACER if trace is None else trace
