"""Observability for the EGO join pipeline: tracing, metrics, profiling.

Three zero-dependency subsystems behind one idiom — a recorder object
threaded through the pipeline, with a shared no-op implementation so an
uninstrumented run pays one attribute lookup per event and allocates
nothing:

* :mod:`.trace` — hierarchical span tracer (sort → schedule →
  unit_pair → sequence_join → leaf) emitting Chrome ``trace_event``
  JSON for ``chrome://tracing``;
* :mod:`.metrics` — typed counters / gauges / histograms with
  Prometheus-text and JSON exporters; every metric is a structural
  operation count, so dumps are byte-identical across runs and across
  worker counts;
* :mod:`.profile` — opt-in per-phase wall/CPU timing with optional
  cProfile hotspot capture.

Entry points: ``ego_self_join_file(..., trace=Tracer(),
metrics=MetricsRegistry(), profiler=PhaseProfiler())`` or the CLI
``repro join FILE --trace out.json --metrics out.prom --profile``.
See ``docs/OBSERVABILITY.md`` for the metric catalogue and how to read
a trace.
"""

from .metrics import (NULL_INSTRUMENT, NULL_METRICS, Counter, Gauge,
                      Histogram, MetricsRegistry, NullMetrics,
                      ensure_metrics)
from .profile import (NULL_PROFILER, NullProfiler, PhaseProfiler,
                      PhaseTimes, ensure_profiler)
from .trace import (NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer,
                    ensure_tracer)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_INSTRUMENT",
    "NULL_METRICS",
    "ensure_metrics",
    "NullProfiler",
    "NULL_PROFILER",
    "PhaseProfiler",
    "PhaseTimes",
    "ensure_profiler",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "ensure_tracer",
]
