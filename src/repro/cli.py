"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the typical workflow on point files:

* ``generate`` — write a synthetic workload (uniform / clusters / cad)
  to a point file;
* ``info`` — show a point file's header and basic statistics;
* ``join`` — external EGO similarity self-join of a point file;
* ``join-two`` — external EGO R ⋈ S join of two point files;
* ``dbscan`` — density clustering via one similarity join;
* ``outliers`` — DB(p, D) distance-based outlier detection;
* ``knn`` — exact k-nearest-neighbour graph via iterated joins;
* ``optics`` — OPTICS cluster ordering via one join;
* ``estimate`` — the query-optimizer cost model (add ``--file`` to
  also predict the result cardinality from a data sample);
* ``serve`` — a long-lived :class:`~repro.service.EGOStore` session
  driven by a seeded op script, every join differentially checked
  against the batch pipeline; ``--journal`` makes it crash-safe and
  ``--recover`` rebuilds a store from an existing journal;
* ``verify`` — seeded differential fuzzing of every join
  implementation (see ``docs/TESTING.md``), with failure shrinking,
  replayable artifacts and the engine × workers × storage acceptance
  matrix.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis.optimizer import choose_unit_size, estimate_ego_join
from .analysis.reporting import (format_table, robustness_summary,
                                 shard_summary)
from .apps.dbscan import dbscan
from .apps.outliers import distance_based_outliers
from .core.ego_join import ego_join_files, ego_self_join_file
from .core.supervisor import SupervisorError
from .obs import MetricsRegistry, PhaseProfiler, Tracer
from .data.loader import load_points, save_points
from .data.synthetic import cad_like, gaussian_clusters, uniform
from .storage.disk import SimulatedDisk
from .storage.faults import FaultPlan, SimulatedCrash, WorkerFaultPlan
from .storage.integrity import CorruptPageError, RetryPolicy
from .storage.pagefile import PointFile
from .storage.records import record_size


def _budget_geometry(n: int, dimensions: int, fraction: float):
    rec = record_size(dimensions)
    budget = max(4 * rec, int(n * rec * fraction))
    unit_bytes = max(16 * rec, budget // 8)
    buffer_units = max(2, budget // unit_bytes)
    return unit_bytes, buffer_units


def cmd_generate(args) -> int:
    """Handle ``repro generate``."""
    if args.kind == "uniform":
        pts = uniform(args.n, args.dims, seed=args.seed)
    elif args.kind == "clusters":
        pts = gaussian_clusters(args.n, args.dims,
                                clusters=args.clusters, seed=args.seed)
    else:
        pts = cad_like(args.n, args.dims, seed=args.seed)
    save_points(args.out, pts)
    print(f"wrote {args.n} {args.dims}-d {args.kind} points to {args.out}")
    return 0


def cmd_info(args) -> int:
    """Handle ``repro info``."""
    with SimulatedDisk(path=args.file) as disk:
        pf = PointFile.open(disk)
        ids, pts = pf.read_all()
    print(f"file        : {args.file}")
    print(f"points      : {pf.count}")
    print(f"dimensions  : {pf.dimensions}")
    print(f"record bytes: {pf.record_bytes}")
    print(f"data bytes  : {pf.data_bytes}")
    if len(pts):
        print(f"bounds      : min {pts.min(axis=0).round(4).tolist()}")
        print(f"              max {pts.max(axis=0).round(4).tolist()}")
        print(f"id range    : [{ids.min()}, {ids.max()}]")
    return 0


def _print_pairs(result, limit: int) -> None:
    a, b = result.pairs()
    shown = min(limit, len(a)) if limit >= 0 else len(a)
    for i in range(shown):
        print(f"{a[i]},{b[i]}")
    if shown < len(a):
        print(f"... ({len(a) - shown} more pairs)", file=sys.stderr)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Build a :class:`FaultPlan` from a ``key=value`` comma list.

    Keys: ``seed``, ``read-errors`` (rate), ``corrupt`` (rate), ``torn``
    (rate), ``crash`` (operation index, repeatable), ``pressure``
    (``START-END`` op-index range, repeatable).  Example::

        --faults seed=7,read-errors=0.01,crash=2000,pressure=100-900
    """
    kwargs = {"seed": 0, "read_error_rate": 0.0, "corrupt_rate": 0.0,
              "torn_write_rate": 0.0}
    crash_ops, pressure = [], []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"fault spec item {item!r} is not key=value")
        key, value = item.split("=", 1)
        key = key.strip()
        if key == "seed":
            kwargs["seed"] = int(value)
        elif key == "read-errors":
            kwargs["read_error_rate"] = float(value)
        elif key == "corrupt":
            kwargs["corrupt_rate"] = float(value)
        elif key == "torn":
            kwargs["torn_write_rate"] = float(value)
        elif key == "crash":
            crash_ops.append(int(value))
        elif key == "pressure":
            lo, sep, hi = value.partition("-")
            if not sep or not lo or not hi:
                raise ValueError(
                    f"pressure range {value!r} is not START-END")
            pressure.append((int(lo), int(hi)))
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    return FaultPlan(crash_ops=crash_ops, pressure_ranges=pressure,
                     **kwargs)


def parse_worker_fault_spec(spec: str) -> WorkerFaultPlan:
    """Build a :class:`WorkerFaultPlan` from a ``key=value`` comma list.

    Keys: ``seed``, ``crash``/``stall``/``corrupt``/``error`` (a unit
    pair ``A:B``, repeatable), ``crash-rate``/``stall-rate``/
    ``corrupt-rate``/``error-rate`` (per-pair probabilities),
    ``stall-seconds``, ``max-attempt`` (``none`` = permanent faults).
    Example::

        --worker-faults seed=7,crash=3:3,stall-rate=0.05,error-rate=0.1
    """
    kwargs = {"seed": 0, "stall_seconds": 30.0, "max_attempt": 0}
    pair_keys = {"crash": "crash_pairs", "stall": "stall_pairs",
                 "corrupt": "corrupt_pairs", "error": "error_pairs"}
    rate_keys = {"crash-rate": "crash_rate", "stall-rate": "stall_rate",
                 "corrupt-rate": "corrupt_rate", "error-rate": "error_rate"}
    pairs = {name: [] for name in pair_keys.values()}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"worker fault spec item {item!r} is not key=value")
        key, value = item.split("=", 1)
        key = key.strip()
        if key == "seed":
            kwargs["seed"] = int(value)
        elif key == "stall-seconds":
            kwargs["stall_seconds"] = float(value)
        elif key == "max-attempt":
            kwargs["max_attempt"] = (None if value.strip().lower()
                                     in ("none", "inf") else int(value))
        elif key in pair_keys:
            a, sep, b = value.partition(":")
            if not sep or not a or not b:
                raise ValueError(f"unit pair {value!r} is not A:B")
            pairs[pair_keys[key]].append((int(a), int(b)))
        elif key in rate_keys:
            kwargs[rate_keys[key]] = float(value)
        else:
            raise ValueError(f"unknown worker fault spec key {key!r}")
    return WorkerFaultPlan(**pairs, **kwargs)


def _build_obs(args):
    """Observability recorders requested by ``--trace/--metrics/--profile``.

    Returns ``(tracer, registry, profiler)`` — each ``None`` when its
    flag is absent, so the pipeline falls back to the null recorders.
    """
    tracer = Tracer() if getattr(args, "trace", None) else None
    registry = MetricsRegistry() if getattr(args, "metrics", None) else None
    profiler = PhaseProfiler() if getattr(args, "profile", False) else None
    return tracer, registry, profiler


def _dump_obs(args, tracer, registry, profiler) -> None:
    """Write the requested observability outputs after a run."""
    if tracer is not None:
        tracer.dump(args.trace)
        print(f"trace: {args.trace} ({len(tracer.events)} events)",
              file=sys.stderr)
    if registry is not None:
        registry.dump(args.metrics)
        print(f"metrics: {args.metrics}", file=sys.stderr)
    if profiler is not None:
        print(profiler.format_table(), file=sys.stderr)


def cmd_join(args) -> int:
    """Handle ``repro join``.

    Exit codes: ``0`` clean completion, ``1`` crash or unmasked data
    corruption (resumable with ``--checkpoint``), ``2`` usage error,
    ``3`` join completed but in degraded (serial) mode after repeated
    worker-pool failure, ``4`` unrecoverable worker fault (poisoned
    task, or pool failure with ``--no-degrade``).
    """
    try:
        fault_plan = parse_fault_spec(args.faults) if args.faults else None
        worker_faults = (parse_worker_fault_spec(args.worker_faults)
                         if args.worker_faults else None)
        if args.resume and not args.checkpoint:
            raise ValueError("--resume requires --checkpoint DIR")
        if args.workers < 1:
            raise ValueError("--workers must be at least 1")
        if args.shards is not None and args.shards < 1:
            raise ValueError("--shards must be at least 1")
        if args.task_retries < 0:
            raise ValueError("--task-retries must be >= 0")
        if args.impl in ("lsh", "auto") and args.metric != "euclidean":
            raise ValueError(
                "--impl lsh/auto requires the euclidean metric "
                "(p-stable projections model L2 distances)")
        if not 0.0 < args.recall_target < 1.0:
            raise ValueError("--recall-target must be in (0, 1)")
        _check_batch_knobs(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if fault_plan is not None and args.resume:
        # The scheduled crash already happened in the interrupted run.
        fault_plan = fault_plan.without_crashes()
    retry = RetryPolicy(max_attempts=args.retries) if args.retries else None
    tracer, registry, profiler = _build_obs(args)
    with SimulatedDisk(path=args.file) as disk:
        pf = PointFile.open(disk)
        unit_bytes, buffer_units = _budget_geometry(
            pf.count, pf.dimensions, args.buffer_fraction)
        impl = args.impl
        if impl == "auto":
            from .analysis.optimizer import choose_join_impl
            impl, ego_est, lsh_est = choose_join_impl(
                pf.count, pf.dimensions, args.epsilon, unit_bytes,
                buffer_units, recall_target=args.recall_target)
            detail = f"predicted ego {ego_est.predicted_io_time_s:.3f}s"
            if lsh_est is not None:
                detail += (f" vs lsh {lsh_est.predicted_total_s:.3f}s "
                           f"(L={lsh_est.tables}, model recall "
                           f"{lsh_est.model_recall:.3f})")
            print(f"impl auto -> {impl} ({detail})", file=sys.stderr)
        if impl == "lsh":
            return _run_lsh_join(args, pf, tracer, registry, profiler)
        try:
            report = ego_self_join_file(pf, args.epsilon,
                                        unit_bytes=unit_bytes,
                                        buffer_units=buffer_units,
                                        materialize=not args.count_only,
                                        engine=args.engine,
                                        batch_points=args.batch_points,
                                        batch_leaves=args.batch_leaves,
                                        workers=args.workers,
                                        shards=args.shards,
                                        shard_policy=args.shard_policy,
                                        backend=args.backend,
                                        metric=args.metric,
                                        fault_plan=fault_plan,
                                        retry=retry,
                                        checksums=args.checksums,
                                        checkpoint_dir=args.checkpoint,
                                        resume=args.resume,
                                        worker_fault_plan=worker_faults,
                                        task_timeout=(args.task_timeout
                                                      if args.task_timeout
                                                      and args.task_timeout
                                                      > 0 else None),
                                        task_retries=args.task_retries,
                                        degrade=args.degrade,
                                        trace=tracer, metrics=registry,
                                        profiler=profiler)
        except SimulatedCrash as exc:
            print(f"crashed: {exc}", file=sys.stderr)
            if args.checkpoint:
                print(f"progress saved; rerun with --checkpoint "
                      f"{args.checkpoint} --resume to continue",
                      file=sys.stderr)
            return 1
        except CorruptPageError as exc:
            print(f"data corruption: {exc}", file=sys.stderr)
            print("rerun with --retries N to mask transient corruption",
                  file=sys.stderr)
            return 1
        except SupervisorError as exc:
            print(f"unrecoverable worker fault: {exc}", file=sys.stderr)
            return 4
    _dump_obs(args, tracer, registry, profiler)
    pairs = report.total_pairs
    if pairs is None:
        pairs = report.result.count
    print(f"pairs: {pairs}", file=sys.stderr)
    s = report.schedule_stats
    print(f"unit loads: {s.total_unit_loads} "
          f"(crabstep phases: {s.crabstep_phases}); "
          f"simulated I/O: {report.simulated_io_time_s:.3f}s",
          file=sys.stderr)
    if fault_plan is not None or args.checksums or retry is not None \
            or args.checkpoint or worker_faults is not None \
            or report.supervisor is not None:
        print(format_table(robustness_summary(report),
                           title="robustness"), file=sys.stderr)
    if report.shards is not None:
        print(format_table(shard_summary(report), title="shards"),
              file=sys.stderr)
    if args.checkpoint:
        print(f"durable result: {report.result_path}", file=sys.stderr)
    if not args.count_only and report.result.materialize:
        _print_pairs(report.result, args.limit)
    sup = report.supervisor
    if sup is not None and sup.degraded:
        print(f"degraded: worker pool failed {sup.pool_recycles} times; "
              f"{sup.inline_tasks} task(s) drained serially in-process "
              f"({sup.retries} retries, {sup.timeouts} timeouts, "
              f"{sup.crashes_detected} worker crashes) — results are "
              f"complete and exact", file=sys.stderr)
        return 3
    return 0


def _run_lsh_join(args, pf, tracer, registry, profiler) -> int:
    """Run the approximate LSH join branch of ``repro join``."""
    from .index.lsh import DEFAULT_K, DEFAULT_W_SCALE
    from .joins.lsh_join import lsh_self_join_file

    try:
        report = lsh_self_join_file(
            pf, args.epsilon,
            k=args.lsh_k if args.lsh_k is not None else DEFAULT_K,
            tables=args.lsh_tables,
            recall_target=args.recall_target,
            w_scale=(args.lsh_width if args.lsh_width is not None
                     else DEFAULT_W_SCALE),
            seed=args.lsh_seed, engine=args.engine,
            backend=args.backend, materialize=not args.count_only,
            trace=tracer, metrics=registry)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _dump_obs(args, tracer, registry, profiler)
    stats = report.lsh
    print(f"pairs: {report.result.count} (approximate: model recall "
          f"{stats.model_recall:.4f} at ε, precision exact)",
          file=sys.stderr)
    print(f"lsh: k={stats.k} L={stats.tables} w={stats.w:g} "
          f"seed={stats.seed} backend={stats.backend}; "
          f"{stats.buckets} buckets, {stats.candidates} candidates, "
          f"{stats.verified} verified; "
          f"simulated I/O: {report.simulated_io_time_s:.3f}s",
          file=sys.stderr)
    print(format_table(robustness_summary(report), title="lsh"),
          file=sys.stderr)
    if not args.count_only and report.result.materialize:
        _print_pairs(report.result, args.limit)
    return 0


def _check_batch_knobs(args) -> None:
    """Reject non-positive batched-engine batch bounds."""
    for knob, value in (("--batch-points", args.batch_points),
                        ("--batch-leaves", args.batch_leaves)):
        if value is not None and value < 1:
            raise ValueError(f"{knob} must be at least 1")


def cmd_join_two(args) -> int:
    """Handle ``repro join-two``."""
    try:
        _check_batch_knobs(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer, registry, profiler = _build_obs(args)
    with SimulatedDisk(path=args.file_r) as disk_r, \
            SimulatedDisk(path=args.file_s) as disk_s:
        fr = PointFile.open(disk_r)
        fs = PointFile.open(disk_s)
        unit_bytes, buffer_units = _budget_geometry(
            fr.count + fs.count, fr.dimensions, args.buffer_fraction)
        report = ego_join_files(fr, fs, args.epsilon,
                                unit_bytes=unit_bytes,
                                buffer_units=buffer_units,
                                materialize=not args.count_only,
                                engine=args.engine,
                                batch_points=args.batch_points,
                                batch_leaves=args.batch_leaves,
                                metric=args.metric,
                                trace=tracer, metrics=registry,
                                profiler=profiler)
    _dump_obs(args, tracer, registry, profiler)
    print(f"pairs: {report.result.count}", file=sys.stderr)
    if not args.count_only:
        _print_pairs(report.result, args.limit)
    return 0


def cmd_dbscan(args) -> int:
    """Handle ``repro dbscan``."""
    _ids, pts = load_points(args.file)
    result = dbscan(pts, args.epsilon, args.min_pts)
    print(f"clusters: {result.num_clusters}", file=sys.stderr)
    print(f"noise: {int(result.noise_mask.sum())}", file=sys.stderr)
    for label in result.labels:
        print(int(label))
    return 0


def cmd_outliers(args) -> int:
    """Handle ``repro outliers``."""
    _ids, pts = load_points(args.file)
    result = distance_based_outliers(pts, args.distance,
                                     fraction=args.fraction)
    print(f"outliers: {result.num_outliers}", file=sys.stderr)
    for idx in result.outlier_ids:
        print(int(idx))
    return 0


def cmd_knn(args) -> int:
    """Handle ``repro knn``."""
    from .apps.knn import knn_graph
    _ids, pts = load_points(args.file)
    graph = knn_graph(pts, args.k)
    print(f"rounds: {graph.rounds}, final epsilon: "
          f"{graph.final_epsilon:.6g}", file=sys.stderr)
    print(f"mean {args.k}-NN distance: "
          f"{graph.mean_knn_distance():.6g}", file=sys.stderr)
    limit = args.limit if args.limit >= 0 else len(graph)
    for i in range(min(limit, len(graph))):
        neigh = ",".join(str(int(x)) for x in graph.neighbors[i]
                         if x >= 0)
        print(f"{i}:{neigh}")
    return 0


def cmd_optics(args) -> int:
    """Handle ``repro optics``."""
    from .apps.optics import optics
    _ids, pts = load_points(args.file)
    result = optics(pts, args.epsilon, args.min_pts)
    print(f"ordering computed for {len(pts)} points", file=sys.stderr)
    plot = result.reachability_plot()
    for p, reach in zip(result.ordering, plot):
        value = "undefined" if np.isinf(reach) else f"{reach:.6g}"
        print(f"{int(p)} {value}")
    return 0


def cmd_estimate(args) -> int:
    """Handle ``repro estimate``."""
    if args.budget_bytes:
        est = choose_unit_size(args.n, args.dims, args.epsilon,
                               args.budget_bytes)
        print(f"recommended unit size : {est.unit_bytes} bytes "
              f"({est.buffer_units} buffer frames)")
    else:
        est = estimate_ego_join(args.n, args.dims, args.epsilon,
                                args.unit_bytes, args.buffer_units)
    print(f"units                 : {est.units}")
    print(f"interval (units)      : {est.interval_units:.1f}")
    print(f"mode                  : "
          f"{'gallop' if est.gallop else 'crabstep'}")
    print(f"predicted unit loads  : {est.predicted_unit_loads:.0f}")
    print(f"sort runs / passes    : {est.sort_runs} / {est.sort_passes}")
    print(f"predicted I/O seconds : {est.predicted_io_time_s:.3f}")
    if args.file:
        from .analysis.selectivity import (grid_selectivity,
                                           sample_selectivity)
        _ids, pts = load_points(args.file)
        by_sample = sample_selectivity(pts, args.epsilon, args.n)
        by_grid = grid_selectivity(pts, args.epsilon, args.n)
        print(f"predicted result pairs: {by_sample:.0f} (sampling) / "
              f"{by_grid:.0f} (grid histogram)")
    return 0


def cmd_serve(args) -> int:
    """Handle ``repro serve``.

    The stand-in for a network daemon: one long-lived store, a scripted
    driver.  A seeded mixed op sequence (inserts, deletes, epsilon
    changes, range/knn queries) runs against the store; every join the
    script issues — plus one final join — is differentially checked
    against the batch EGO join of the store's live point set.  Exit
    code ``1`` flags any divergence, ``0`` a fully-verified session.
    """
    from .core.ego_join import ego_self_join
    from .service import EGOStore
    from .verify.canonical import canonical_pairs, diff_pairs

    tracer, registry, _profiler = _build_obs(args)
    try:
        if args.recover:
            if not args.journal:
                raise ValueError("--recover requires --journal PATH")
            store = EGOStore.recover(args.journal, metrics=registry,
                                     trace=tracer)
            print(f"recovered from {args.journal}: {len(store)} live "
                  f"points at data version {store.data_version}",
                  file=sys.stderr)
        else:
            store = EGOStore(args.epsilon,
                             compact_threshold=args.compact_threshold,
                             journal=args.journal, metrics=registry,
                             trace=tracer)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def check_join(step: str) -> bool:
        ids, pts = store.live_points()
        got = store.join()
        if len(pts) < 2:
            return len(got) == 0
        want = canonical_pairs(
            ego_self_join(pts, store.epsilon, ids=ids))
        diff = diff_pairs(want, got)
        if not diff.ok:
            print(f"{step}: JOIN DIVERGED from batch pipeline — "
                  f"{diff.summary()}", file=sys.stderr)
        return diff.ok

    rng = np.random.default_rng(args.seed)
    dims = args.dims
    failures = 0
    checks = 0
    for step in range(args.selftest_ops):
        kind = int(rng.integers(0, 6))
        if store.dimensions is not None:
            dims = store.dimensions
        if kind in (0, 1) or len(store) < 4:
            store.insert(rng.random((int(rng.integers(1, 16)), dims)))
        elif kind == 2:
            ids = store.ids()
            take = min(int(rng.integers(1, 4)), len(ids))
            store.delete(rng.choice(ids, size=take, replace=False))
        elif kind == 3:
            store.set_epsilon(
                float(rng.uniform(0.5, 1.5)) * store.epsilon)
        elif kind == 4:
            store.range(rng.random(dims))
        else:
            checks += 1
            if not check_join(f"step {step}"):
                failures += 1
    checks += 1
    if not check_join("final"):
        failures += 1

    _dump_obs(args, tracer, registry, _profiler)
    s = store.stats()
    print(f"ops: {s.inserts} inserts, {s.deletes} deletes, "
          f"{s.epsilon_changes} epsilon changes, {s.compactions} "
          f"compactions", file=sys.stderr)
    print(f"queries: {s.queries} served, cache hit ratio "
          f"{s.cache_hit_ratio:.2f}", file=sys.stderr)
    print(f"store: {s.live_points} live points, {s.main_rows} main rows "
          f"({s.dead_main_rows} dead), {s.delta_rows} delta rows, "
          f"ε={s.epsilon:g} (grid {s.grid_epsilon:g})", file=sys.stderr)
    print(f"digest: {store.state_digest()}")
    print(f"selftest: {checks - failures}/{checks} join checks "
          f"identical to the batch pipeline")
    return 1 if failures else 0


def cmd_verify(args) -> int:
    """Handle ``repro verify``."""
    from .verify import fuzz as fuzz_mod
    from .verify.fuzz import (acceptance_matrix, parse_budget,
                              replay_artifact, run_fuzz)
    from .verify.workloads import generate_workload

    if args.replay:
        still_fails, detail = replay_artifact(args.replay)
        if still_fails:
            print(f"artifact still fails: {detail}", file=sys.stderr)
            return 1
        print(f"artifact no longer fails: {detail}")
        return 0

    try:
        budget = parse_budget(args.budget)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    configs = fuzz_mod.DEFAULT_CONFIGS
    if args.impls:
        wanted = {name.strip() for name in args.impls.split(",")}
        configs = [c for c in configs
                   if (c if isinstance(c, str) else c[0]) in wanted]
        if not configs:
            print(f"error: no known implementation in {args.impls!r}",
                  file=sys.stderr)
            return 2

    exit_code = 0
    if args.matrix:
        w = generate_workload("clusters", args.matrix_points, args.dims,
                              0.15, args.seed)
        ok, digests = acceptance_matrix(w.points, w.epsilon)
        for label, digest in sorted(digests.items()):
            print(f"{digest[:16]}  {label}", file=sys.stderr)
        print(f"acceptance matrix: "
              f"{'identical' if ok else 'DIVERGED'} "
              f"({len(digests)} configurations)", file=sys.stderr)
        if not ok:
            exit_code = 1

    report = run_fuzz(seed=args.seed, budget_s=budget,
                      dimensions=args.dims, max_points=args.max_points,
                      configs=configs, artifact_dir=args.out,
                      log=(lambda line: print(line, file=sys.stderr))
                      if args.verbose else None)
    print(report.describe())
    return 1 if (exit_code or not report.ok) else 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Epsilon Grid Order similarity join (SIGMOD 2001 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a synthetic point file")
    g.add_argument("--kind", choices=["uniform", "clusters", "cad"],
                   default="uniform")
    g.add_argument("--n", type=int, required=True)
    g.add_argument("--dims", type=int, default=8)
    g.add_argument("--clusters", type=int, default=10)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True)
    g.set_defaults(func=cmd_generate)

    i = sub.add_parser("info", help="describe a point file")
    i.add_argument("file")
    i.set_defaults(func=cmd_info)

    j = sub.add_parser("join", help="external EGO self-join")
    j.add_argument("file")
    j.add_argument("--epsilon", type=float, required=True)
    j.add_argument("--buffer-fraction", type=float, default=0.10)
    j.add_argument("--count-only", action="store_true")
    j.add_argument("--limit", type=int, default=20,
                   help="max pairs printed (-1 for all)")
    j.add_argument("--metric", default="euclidean",
                   help="euclidean | manhattan | chebyshev")
    j.add_argument("--engine", default="auto",
                   choices=["auto", "vector", "matmul", "batched",
                            "scalar"],
                   help="leaf distance kernel (auto picks batched or "
                        "matmul per leaf)")
    j.add_argument("--impl", default="ego",
                   choices=["ego", "lsh", "auto"],
                   help="join algorithm: exact external EGO (default), "
                        "approximate LSH (precision 1.0, recall bounded "
                        "below by the collision model), or auto (the "
                        "cost model picks; LSH wins in high-d/large-ε "
                        "regimes)")
    j.add_argument("--recall-target", type=float, default=0.95,
                   metavar="R",
                   help="LSH: auto-size the table count so model recall "
                        "at distance ε meets R (default 0.95; ignored "
                        "with --lsh-tables)")
    j.add_argument("--lsh-k", type=int, default=None, metavar="K",
                   help="LSH: projections concatenated per table "
                        "(default 2)")
    j.add_argument("--lsh-tables", type=int, default=None, metavar="L",
                   help="LSH: explicit table count (overrides "
                        "--recall-target)")
    j.add_argument("--lsh-width", type=float, default=None, metavar="W",
                   help="LSH: projection width in units of ε "
                        "(default 4.0)")
    j.add_argument("--lsh-seed", type=int, default=0, metavar="N",
                   help="LSH: hash-family seed (same seed, same result)")
    j.add_argument("--batch-points", type=int, default=None, metavar="N",
                   help="batched engine: flush a leaf batch once its "
                        "stacked blocks hold N rows (default 4096)")
    j.add_argument("--batch-leaves", type=int, default=None, metavar="N",
                   help="batched engine: flush after N leaf pairs "
                        "(default 256)")
    j.add_argument("--workers", type=int, default=1, metavar="N",
                   help="join scheduled unit pairs on N processes "
                        "(results are identical to the serial run)")
    j.add_argument("--shards", type=int, default=None, metavar="N",
                   help="partition the sorted file into N unit-range "
                        "shards, each joined in its own process against "
                        "a private disk (supersedes --workers; results "
                        "are identical to the serial run)")
    j.add_argument("--shard-policy", default="adaptive",
                   choices=["uniform", "adaptive"],
                   help="shard partitioner: equal unit counts, or "
                        "cost-balanced with re-splitting of heavy "
                        "ε-cells (default)")
    j.add_argument("--backend", default="simulated",
                   choices=["simulated", "file", "memory"],
                   help="storage backend for the per-shard private "
                        "disks (default simulated)")
    j.add_argument("--task-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="deadline on the oldest outstanding worker task; "
                        "on expiry the hung pool is recycled and the "
                        "task retried (0 disables; default 30)")
    j.add_argument("--task-retries", type=int, default=2, metavar="N",
                   help="retry a failed/hung/corrupted worker task up to "
                        "N times before quarantining it (default 2)")
    j.add_argument("--degrade", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="on repeated worker-pool failure, finish the "
                        "remaining tasks serially in-process instead of "
                        "aborting (exit code 3 marks a degraded run)")
    j.add_argument("--worker-faults", default=None, metavar="SPEC",
                   help="inject worker faults (testing): comma list of "
                        "seed=N, crash=A:B, stall=A:B, corrupt=A:B, "
                        "error=A:B (repeatable), crash-rate=R, "
                        "stall-rate=R, corrupt-rate=R, error-rate=R, "
                        "stall-seconds=S, max-attempt=N|none")
    j.add_argument("--faults", default=None, metavar="SPEC",
                   help="inject storage faults: comma list of seed=N, "
                        "read-errors=RATE, corrupt=RATE, torn=RATE, "
                        "crash=OP (repeatable), pressure=START-END")
    j.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry failed reads up to N attempts "
                        "(0 disables the retry layer)")
    j.add_argument("--checksums", action="store_true",
                   help="verify per-page CRC32 checksums on every read")
    j.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="journal progress under DIR for crash-safe "
                        "resume; the result pair file is durable there")
    j.add_argument("--resume", action="store_true",
                   help="continue from the journal in --checkpoint "
                        "after an interrupted run")
    j.add_argument("--trace", default=None, metavar="OUT.json",
                   help="write a Chrome trace_event JSON of the run "
                        "(open in chrome://tracing or Perfetto)")
    j.add_argument("--metrics", default=None, metavar="OUT",
                   help="dump run metrics; .json extension selects JSON, "
                        "anything else Prometheus text format")
    j.add_argument("--profile", action="store_true",
                   help="print a per-phase wall/CPU time table")
    j.set_defaults(func=cmd_join)

    j2 = sub.add_parser("join-two", help="external EGO R ⋈ S join")
    j2.add_argument("file_r")
    j2.add_argument("file_s")
    j2.add_argument("--epsilon", type=float, required=True)
    j2.add_argument("--buffer-fraction", type=float, default=0.10)
    j2.add_argument("--count-only", action="store_true")
    j2.add_argument("--limit", type=int, default=20)
    j2.add_argument("--metric", default="euclidean",
                    help="euclidean | manhattan | chebyshev")
    j2.add_argument("--engine", default="auto",
                    choices=["auto", "vector", "matmul", "batched",
                             "scalar"],
                    help="leaf distance kernel")
    j2.add_argument("--batch-points", type=int, default=None, metavar="N",
                    help="batched engine: flush a leaf batch once its "
                         "stacked blocks hold N rows (default 4096)")
    j2.add_argument("--batch-leaves", type=int, default=None, metavar="N",
                    help="batched engine: flush after N leaf pairs "
                         "(default 256)")
    j2.add_argument("--trace", default=None, metavar="OUT.json",
                    help="write a Chrome trace_event JSON of the run")
    j2.add_argument("--metrics", default=None, metavar="OUT",
                    help="dump run metrics (.json → JSON, else "
                         "Prometheus text)")
    j2.add_argument("--profile", action="store_true",
                    help="print a per-phase wall/CPU time table")
    j2.set_defaults(func=cmd_join_two)

    d = sub.add_parser("dbscan", help="join-based DBSCAN clustering")
    d.add_argument("file")
    d.add_argument("--epsilon", type=float, required=True)
    d.add_argument("--min-pts", type=int, default=5)
    d.set_defaults(func=cmd_dbscan)

    o = sub.add_parser("outliers", help="DB(p, D) outlier detection")
    o.add_argument("file")
    o.add_argument("--distance", type=float, required=True)
    o.add_argument("--fraction", type=float, default=0.95)
    o.set_defaults(func=cmd_outliers)

    kn = sub.add_parser("knn", help="exact kNN graph via iterated joins")
    kn.add_argument("file")
    kn.add_argument("--k", type=int, default=5)
    kn.add_argument("--limit", type=int, default=20,
                    help="rows printed (-1 for all)")
    kn.set_defaults(func=cmd_knn)

    op = sub.add_parser("optics",
                        help="OPTICS cluster ordering via one join")
    op.add_argument("file")
    op.add_argument("--epsilon", type=float, required=True)
    op.add_argument("--min-pts", type=int, default=5)
    op.set_defaults(func=cmd_optics)

    e = sub.add_parser("estimate",
                       help="query-optimizer cost model (no data needed)")
    e.add_argument("--n", type=int, required=True)
    e.add_argument("--dims", type=int, default=8)
    e.add_argument("--epsilon", type=float, required=True)
    e.add_argument("--unit-bytes", type=int, default=65536)
    e.add_argument("--buffer-units", type=int, default=8)
    e.add_argument("--budget-bytes", type=int, default=0,
                   help="optimise the unit size under this buffer budget")
    e.add_argument("--file", default=None,
                   help="sample this point file to also predict the "
                        "result cardinality")
    e.set_defaults(func=cmd_estimate)

    sv = sub.add_parser("serve",
                        help="long-lived EGOStore session with a "
                             "scripted, self-verifying op driver")
    sv.add_argument("--epsilon", type=float, default=0.2,
                    help="store ε (also the resident grid ε)")
    sv.add_argument("--dims", type=int, default=3,
                    help="point dimensionality of the scripted inserts")
    sv.add_argument("--seed", type=int, default=0,
                    help="seed of the scripted op sequence")
    sv.add_argument("--selftest-ops", type=int, default=40, metavar="N",
                    help="scripted ops to run (default 40)")
    sv.add_argument("--compact-threshold", type=int, default=64,
                    metavar="N",
                    help="delta rows that trigger compaction")
    sv.add_argument("--journal", default=None, metavar="PATH",
                    help="journal every mutating op to PATH (crash-safe; "
                         "replay with --recover)")
    sv.add_argument("--recover", action="store_true",
                    help="rebuild the store from --journal instead of "
                         "starting fresh, then continue the script")
    sv.add_argument("--trace", default=None, metavar="OUT.json",
                    help="write a Chrome trace_event JSON of the "
                         "session")
    sv.add_argument("--metrics", default=None, metavar="OUT",
                    help="dump store metrics (.json → JSON, else "
                         "Prometheus text)")
    sv.set_defaults(func=cmd_serve)

    v = sub.add_parser("verify",
                       help="seeded differential fuzzing of the joins")
    v.add_argument("--seed", type=int, default=0,
                   help="fuzz seed (trial i of a seed is deterministic)")
    v.add_argument("--budget", default="60s", metavar="TIME",
                   help="time budget, e.g. 30s, 2m (default 60s)")
    v.add_argument("--dims", type=int, default=5,
                   help="max dimensionality of fuzzed workloads")
    v.add_argument("--max-points", type=int, default=120,
                   help="max points per fuzzed workload")
    v.add_argument("--impls", default=None, metavar="NAMES",
                   help="comma list restricting the swept "
                        "implementations (default: all)")
    v.add_argument("--out", default=None, metavar="DIR",
                   help="write replayable failure artifacts under DIR")
    v.add_argument("--replay", default=None, metavar="ARTIFACT.json",
                   help="re-run one dumped failure artifact and exit")
    v.add_argument("--matrix", action="store_true",
                   help="also run the engine × workers × storage "
                        "acceptance matrix before fuzzing")
    v.add_argument("--matrix-points", type=int, default=200,
                   help="workload size for --matrix")
    v.add_argument("--verbose", action="store_true",
                   help="log every fuzz trial to stderr")
    v.set_defaults(func=cmd_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
