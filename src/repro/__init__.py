"""repro — Epsilon Grid Order similarity join (SIGMOD 2001 reproduction).

A from-scratch implementation of Böhm, Braunmüller, Krebs & Kriegel,
"Epsilon Grid Order: An Algorithm for the Similarity Join on Massive
High-Dimensional Data", including every substrate the paper depends on
(simulated disk, external sorting, buffer management) and every
competitor of its evaluation (nested loop, RSJ, Z-Order-RSJ, MuX,
ε-kdB-tree).

Quick start::

    import numpy as np
    from repro import ego_self_join

    points = np.random.default_rng(0).random((10_000, 8))
    result = ego_self_join(points, epsilon=0.1)
    ids_a, ids_b = result.pairs()

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the reproduced evaluation.
"""

from .apps import (DBSCANResult, KNNGraph, NeighborhoodGraph,
                   OPTICSResult, OutlierResult, dbscan,
                   distance_based_outliers, epsilon_graph, knn_graph,
                   optics)
from .core import (EGOIndex, JoinResult, Metric, ego_join,
                   ego_join_files, ego_self_join, ego_self_join_file,
                   ego_self_join_parallel, ego_sorted, get_metric,
                   grid_cells)
from .data import (cad_like, dft_features, epsilon_for_average_neighbors,
                   gaussian_clusters, load_points, make_point_file,
                   random_walks, save_points, seasonal_series, uniform)
from .joins import (brute_force_self_join, epskdb_self_join,
                    grid_hash_self_join, msj_self_join, mux_self_join,
                    nested_loop_self_join_file, rsj_self_join,
                    spatial_hash_self_join, zorder_rsj_self_join)
from .storage import DiskModel, PointFile, SimulatedDisk

__version__ = "1.0.0"

__all__ = [
    "DBSCANResult",
    "EGOIndex",
    "DiskModel",
    "JoinResult",
    "KNNGraph",
    "Metric",
    "NeighborhoodGraph",
    "OPTICSResult",
    "OutlierResult",
    "PointFile",
    "SimulatedDisk",
    "__version__",
    "brute_force_self_join",
    "cad_like",
    "dbscan",
    "dft_features",
    "distance_based_outliers",
    "ego_join",
    "ego_join_files",
    "ego_self_join",
    "ego_self_join_file",
    "ego_self_join_parallel",
    "ego_sorted",
    "epsilon_for_average_neighbors",
    "epsilon_graph",
    "epskdb_self_join",
    "gaussian_clusters",
    "get_metric",
    "grid_cells",
    "grid_hash_self_join",
    "knn_graph",
    "load_points",
    "make_point_file",
    "msj_self_join",
    "mux_self_join",
    "nested_loop_self_join_file",
    "random_walks",
    "seasonal_series",
    "optics",
    "rsj_self_join",
    "spatial_hash_self_join",
    "save_points",
    "uniform",
    "zorder_rsj_self_join",
]
