"""Incrementally-maintained EGO similarity-join store.

The batch pipeline (``ego_self_join`` and the external variants) is
sort-once-join-once: every call pays the full EGO sort.  ``EGOStore``
keeps that investment resident across calls and maintains it under
updates, the shape *Dynamic Enumeration of Similarity Joins* argues for
and the ROADMAP's service north-star requires:

* **main run** — one EGO-sorted array of live (and lazily-dead) rows at
  a fixed *grid epsilon* (the construction-time ε), with resident
  per-unit ε-interval metadata (first-cell keys every ``unit_records``
  rows) so any query box maps to a contiguous main slice by bisection
  (Lemmata 2/3 of the paper applied to the stored order);
* **delta buffer** — updates land in a small unsorted buffer; queries
  join delta×delta and delta×main-slice with the ordinary sequence
  join, so results never lag the last write;
* **compaction** — once the delta exceeds a threshold it is EGO-sorted
  and folded into the main run with the external sort's k-way heap
  merge (:func:`repro.sorting.external_sort.merge_sorted_arrays`); the
  main run itself is never re-sorted;
* **epsilon changes** — ``set_epsilon`` never re-sorts the resident
  order: a run sorted at grid width ``w`` serves any join at ε ≤ w
  directly (the pruning grid simply stays at ``w``, the
  ``grid_epsilon`` contract of ``JoinContext``).  A *larger* ε cannot
  reuse the stored order — no coarser grid preserves lexicographic
  order, integer multiples of ``w`` included — so such queries run on
  a lazily-built re-ordered *view* of the main run, cached per width
  until the next compaction;
* **durability** — every mutating op is journaled through
  :class:`repro.storage.journal.Journal`; replaying the journal rebuilds
  the store byte-identically (:meth:`EGOStore.state_digest`), which the
  ``ego_store_replay`` oracle entry checks under crash+resume;
* **caching** — join results are kept in a small LRU keyed on
  ``(epsilon, data version)``.  The version is bumped by every mutating
  op and double-checked on every hit (:class:`StaleCacheError`), so a
  stale result can never be served.

Internally every row gets a monotonically-increasing *rowid*; joins run
in rowid space and results are filtered against the dead-row set and
mapped to user ids at the end.  That makes delete + re-insert of the
same user id unambiguous even while the dead row still sits in the main
run awaiting compaction.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence as SequenceT, Tuple

import numpy as np

from ..core.ego_order import (ego_sort_order, ensure_finite, grid_cells,
                              validate_epsilon)
from ..core.result import JoinResult
from ..core.sequence import Sequence
from ..core.sequence_join import (DEFAULT_MINLEN, JoinContext,
                                  join_sequences)
from ..obs.metrics import ensure_metrics
from ..obs.trace import ensure_tracer
from ..sorting.external_sort import merge_sorted_arrays
from ..storage.journal import Journal

#: Delta-buffer size at which an insert triggers compaction.
DEFAULT_COMPACT_THRESHOLD = 256

#: Main-run rows per resident interval-metadata entry.
DEFAULT_UNIT_RECORDS = 64

#: Join-result LRU entries kept.
DEFAULT_CACHE_SIZE = 32

#: Coarse main-run views (ε above the grid ε) kept per compaction.
MAX_COARSE_VIEWS = 4


@dataclass
class _MainView:
    """One ordering of the main run at a given grid width.

    The resident view (width = the store's grid ε) is maintained by
    compaction; coarser views are built on demand for queries at a
    larger ε and cached until the main run changes.
    """

    width: float
    rowids: np.ndarray
    points: np.ndarray
    cells: np.ndarray
    #: First-row cell key per ``unit_records`` rows — the resident
    #: per-unit ε-interval metadata that brackets interval bisection.
    unit_keys: List[Tuple[int, ...]]


class StaleCacheError(RuntimeError):
    """A cached join result survived a data-version bump.

    Raised by the internal consistency checks; seeing it means the
    version-keying of the LRU is broken, never that the caller did
    something wrong.
    """


@dataclass
class StoreStats:
    """Point-in-time accounting snapshot of one :class:`EGOStore`."""

    live_points: int
    main_rows: int
    dead_main_rows: int
    delta_rows: int
    data_version: int
    epsilon: float
    grid_epsilon: float
    inserts: int
    deletes: int
    epsilon_changes: int
    compactions: int
    queries: int
    cache_hits: int
    cache_misses: int

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class EGOStore:
    """A long-lived, incrementally-maintained ε self-join store.

    Parameters
    ----------
    epsilon:
        Initial (and default) join distance.  Also fixes the *grid
        epsilon* the main run stays sorted at for the store's lifetime.
    dimensions:
        Point dimensionality; may be left ``None`` and is then fixed by
        the first insert.
    engine, minlen:
        Leaf kernel and leaf size for every sequence join the store
        runs (see :class:`repro.core.sequence_join.JoinContext`).
    compact_threshold:
        Delta-buffer row count at which a mutating op triggers
        compaction into the main run.
    cache_size:
        Join-result LRU capacity (0 disables caching).
    unit_records:
        Main-run rows per resident ε-interval metadata entry.
    journal:
        ``None``, a path, or a :class:`~repro.storage.journal.Journal`.
        When given, the store starts a fresh update log there (build
        parameters plus every mutating op); use :meth:`recover` to
        rebuild from an existing log.
    metrics, trace:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` /
        :class:`~repro.obs.trace.Tracer`; per-op counters, gauges and
        compaction/query spans are recorded through them.
    """

    def __init__(self, epsilon: float, *, dimensions: Optional[int] = None,
                 engine: str = "auto", minlen: int = DEFAULT_MINLEN,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 unit_records: int = DEFAULT_UNIT_RECORDS,
                 journal: Optional[object] = None,
                 journal_flush_every: int = 1,
                 metrics=None, trace=None) -> None:
        self._epsilon = validate_epsilon(epsilon)
        self.grid_epsilon = self._epsilon
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}")
        if unit_records < 1:
            raise ValueError(
                f"unit_records must be >= 1, got {unit_records}")
        self._dims = None if dimensions is None else int(dimensions)
        self._engine = engine
        self._minlen = int(minlen)
        self._compact_threshold = int(compact_threshold)
        self._cache_size = int(cache_size)
        self._unit_records = int(unit_records)
        self._metrics = ensure_metrics(metrics)
        self._trace = ensure_tracer(trace)

        # Main run: EGO-sorted at grid_epsilon by (cells, rowid).
        d = self._dims if self._dims is not None else 0
        self._main_rowids = np.empty(0, dtype=np.int64)
        self._main_pts = np.empty((0, d))
        self._main_cells = np.empty((0, d), dtype=np.int64)
        self._unit_keys: List[Tuple[int, ...]] = []
        self._main_dead = 0
        # Lazily-built re-orderings of the main run for ε > grid ε,
        # LRU-capped at MAX_COARSE_VIEWS, dropped on every compaction.
        self._coarse_views: "OrderedDict[float, _MainView]" = OrderedDict()

        # Delta buffer (unsorted) + per-rowid tables.
        self._delta_rowids: List[int] = []
        self._delta_pts: List[np.ndarray] = []
        self._delta_pos: Dict[int, int] = {}
        self._row_user = np.empty(0, dtype=np.int64)
        self._row_dead = np.empty(0, dtype=bool)
        self._next_rowid = 0
        self._next_auto_id = 0
        self._id_rowid: Dict[int, int] = {}

        self._version = 0
        self._cache: "OrderedDict[tuple, Tuple[int, object]]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._counts = {"inserts": 0, "deletes": 0, "epsilon_changes": 0,
                        "compactions": 0, "queries": 0}

        self._replaying = False
        self._journal: Optional[Journal] = None
        if journal is not None:
            jr = journal if isinstance(journal, Journal) \
                else Journal(str(journal), flush_every=journal_flush_every)
            jr.reset()
            jr.record_store_meta(self._meta())
            self._journal = jr

    # -- construction / recovery --------------------------------------------

    def _meta(self) -> Dict:
        return {"epsilon": float(self._epsilon),
                "dimensions": self._dims,
                "engine": self._engine,
                "minlen": self._minlen,
                "compact_threshold": self._compact_threshold,
                "cache_size": self._cache_size,
                "unit_records": self._unit_records}

    @classmethod
    def from_points(cls, points: np.ndarray, epsilon: float,
                    ids: Optional[np.ndarray] = None,
                    **kwargs) -> "EGOStore":
        """Fresh store built from a batch: insert everything, compact."""
        store = cls(epsilon, **kwargs)
        if len(points):
            store.insert(points, ids=ids)
        store.compact()
        return store

    @classmethod
    def recover(cls, journal, *, journal_flush_every: int = 1,
                metrics=None, trace=None) -> "EGOStore":
        """Rebuild a store by replaying an update journal.

        The journal's build-parameter record plus its op list fully
        determine the store (compactions replay implicitly, at the same
        thresholds), so the result is byte-identical to the store that
        wrote the log — compare :meth:`state_digest`.  The journal stays
        attached: ops applied after recovery keep appending to it.
        """
        jr = journal if isinstance(journal, Journal) \
            else Journal(str(journal), flush_every=journal_flush_every)
        meta = jr.store_meta()
        if meta is None:
            raise ValueError(
                f"journal {jr.path!r} holds no store metadata")
        dims = meta.get("dimensions")
        store = cls(meta["epsilon"],
                    dimensions=None if dims is None else int(dims),
                    engine=meta.get("engine", "auto"),
                    minlen=int(meta.get("minlen", DEFAULT_MINLEN)),
                    compact_threshold=int(meta.get(
                        "compact_threshold", DEFAULT_COMPACT_THRESHOLD)),
                    cache_size=int(meta.get("cache_size",
                                            DEFAULT_CACHE_SIZE)),
                    unit_records=int(meta.get("unit_records",
                                              DEFAULT_UNIT_RECORDS)),
                    metrics=metrics, trace=trace)
        store._journal = jr
        store._replaying = True
        try:
            for op in jr.store_ops():
                store._apply_op(op)
        finally:
            store._replaying = False
        return store

    def _apply_op(self, op: List) -> None:
        kind = op[0]
        if kind == "insert":
            self.insert(np.asarray(op[2], dtype=np.float64),
                        ids=np.asarray(op[1], dtype=np.int64))
        elif kind == "delete":
            self.delete(op[1])
        elif kind == "set_epsilon":
            self.set_epsilon(float(op[1]))
        else:
            raise ValueError(f"unknown journaled store op {kind!r}")

    def _log_op(self, op: List) -> None:
        if self._journal is not None and not self._replaying:
            self._journal.record_store_op(op)

    # -- basic accessors -----------------------------------------------------

    @property
    def epsilon(self) -> float:
        """Current default join distance (change via :meth:`set_epsilon`)."""
        return self._epsilon

    @property
    def dimensions(self) -> Optional[int]:
        return self._dims

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped by every mutating operation."""
        return self._version

    def __len__(self) -> int:
        return len(self._id_rowid)

    def __contains__(self, user_id: int) -> bool:
        return int(user_id) in self._id_rowid

    def ids(self) -> np.ndarray:
        """All live user ids, ascending."""
        return np.sort(np.fromiter(self._id_rowid.keys(), dtype=np.int64,
                                   count=len(self._id_rowid)))

    def live_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, points)`` of every live row, sorted by user id.

        This is the store's *current point set* — the batch join of
        exactly these points is what :meth:`join` must reproduce, which
        is the differential check the oracle entries run.
        """
        rowids = np.fromiter(self._id_rowid.values(), dtype=np.int64,
                             count=len(self._id_rowid))
        ids = np.fromiter(self._id_rowid.keys(), dtype=np.int64,
                          count=len(self._id_rowid))
        pts = np.empty((len(rowids), self._dims or 0))
        if len(rowids):
            main_index = {int(r): i for i, r in
                          enumerate(self._main_rowids.tolist())}
            for out, rowid in enumerate(rowids.tolist()):
                pos = self._delta_pos.get(rowid)
                if pos is not None:
                    pts[out] = self._delta_pts[pos]
                else:
                    pts[out] = self._main_pts[main_index[rowid]]
        order = np.argsort(ids, kind="stable")
        return ids[order], pts[order]

    def stats(self) -> StoreStats:
        """Snapshot of the store's counters and sizes."""
        return StoreStats(
            live_points=len(self._id_rowid),
            main_rows=len(self._main_rowids),
            dead_main_rows=self._main_dead,
            delta_rows=len(self._delta_rowids),
            data_version=self._version,
            epsilon=self._epsilon,
            grid_epsilon=self.grid_epsilon,
            inserts=self._counts["inserts"],
            deletes=self._counts["deletes"],
            epsilon_changes=self._counts["epsilon_changes"],
            compactions=self._counts["compactions"],
            queries=self._counts["queries"],
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses)

    def state_digest(self) -> str:
        """SHA-256 over the complete logical state.

        Two stores that applied the same op sequence — directly, or via
        journal replay after a crash — must agree on this digest; the
        ``ego_store_replay`` oracle entry and the crash/resume tests
        assert exactly that.
        """
        h = hashlib.sha256()
        h.update(repr((float(self._epsilon), float(self.grid_epsilon),
                       self._dims, self._version, self._next_rowid,
                       self._next_auto_id, self._main_dead)).encode())
        h.update(self._main_rowids.tobytes())
        h.update(np.ascontiguousarray(self._main_pts).tobytes())
        h.update(np.asarray(self._delta_rowids, dtype=np.int64).tobytes())
        if self._delta_pts:
            h.update(np.asarray(self._delta_pts).tobytes())
        h.update(repr(sorted((int(k), int(v))
                             for k, v in self._id_rowid.items())).encode())
        dead = np.nonzero(self._row_dead[:self._next_rowid])[0]
        h.update(dead.astype(np.int64).tobytes())
        return h.hexdigest()

    # -- mutating operations -------------------------------------------------

    def insert(self, points: np.ndarray,
               ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Insert a point (``(d,)``) or batch (``(n, d)``); returns ids.

        Explicit ``ids`` must not collide with live ids; without them,
        fresh ids are assigned from a monotone counter.  The op is
        journaled (with the resolved ids, so replay is deterministic),
        the data version bumps, and the delta buffer compacts when it
        crosses the threshold.
        """
        pts = ensure_finite(np.asarray(points, dtype=np.float64))
        if pts.ndim == 1:
            pts = pts[None, :]
        if pts.ndim != 2 or pts.shape[1] < 1:
            raise ValueError(f"points must be (n, d), got {pts.shape}")
        if self._dims is None:
            self._set_dimensions(pts.shape[1])
        elif pts.shape[1] != self._dims:
            raise ValueError(f"expected {self._dims}-dimensional points, "
                             f"got {pts.shape[1]}")
        n = len(pts)
        if ids is None:
            ids = np.arange(self._next_auto_id, self._next_auto_id + n,
                            dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if len(ids) != n:
                raise ValueError(
                    f"{len(ids)} ids for {n} points")
            if len(np.unique(ids)) != n:
                raise ValueError("duplicate ids in one insert batch")
            for uid in ids.tolist():
                if uid in self._id_rowid:
                    raise ValueError(f"id {uid} is already live")
        op = ["insert", [int(u) for u in ids.tolist()],
              [[float(c) for c in row] for row in pts.tolist()]]
        self._log_op(op)
        self._grow_row_tables(n)
        for uid, row in zip(ids.tolist(), pts):
            rowid = self._next_rowid
            self._next_rowid += 1
            self._row_user[rowid] = uid
            self._id_rowid[uid] = rowid
            self._delta_pos[rowid] = len(self._delta_rowids)
            self._delta_rowids.append(rowid)
            self._delta_pts.append(np.array(row, dtype=np.float64))
        if len(ids):
            self._next_auto_id = max(self._next_auto_id,
                                     int(ids.max()) + 1)
        self._counts["inserts"] += n
        self._metrics.counter(
            "ego_store_inserts_total",
            "Points inserted into the store").inc(n)
        self._mutated()
        if len(self._delta_rowids) >= self._compact_threshold:
            self.compact()
        return ids

    def delete(self, ids) -> int:
        """Delete live points by user id; returns the count removed.

        Rows still in the delta buffer are removed physically; rows in
        the main run are only marked dead (joins filter them, the next
        compaction drops them).  Unknown ids raise ``KeyError``.
        """
        if np.isscalar(ids):
            ids = [ids]
        ids = [int(u) for u in np.asarray(ids, dtype=np.int64).tolist()]
        for uid in ids:
            if uid not in self._id_rowid:
                raise KeyError(f"id {uid} is not live")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate ids in one delete batch")
        self._log_op(["delete", list(ids)])
        for uid in ids:
            rowid = self._id_rowid.pop(uid)
            self._row_dead[rowid] = True
            pos = self._delta_pos.pop(rowid, None)
            if pos is not None:
                last = len(self._delta_rowids) - 1
                if pos != last:
                    moved = self._delta_rowids[last]
                    self._delta_rowids[pos] = moved
                    self._delta_pts[pos] = self._delta_pts[last]
                    self._delta_pos[moved] = pos
                self._delta_rowids.pop()
                self._delta_pts.pop()
            else:
                self._main_dead += 1
        self._counts["deletes"] += len(ids)
        self._metrics.counter(
            "ego_store_deletes_total",
            "Points deleted from the store").inc(len(ids))
        self._mutated()
        return len(ids)

    def set_epsilon(self, epsilon: float) -> None:
        """Change the default join distance.

        ε ≤ grid epsilon is served by the resident order directly
        (pruning keeps using the grid width); a larger ε is served by a
        cached re-ordered view of the main run (see :meth:`_main_view`)
        — the resident order itself is never re-sorted.
        """
        eps = validate_epsilon(epsilon)
        self._log_op(["set_epsilon", float(eps)])
        self._epsilon = eps
        self._counts["epsilon_changes"] += 1
        self._metrics.counter(
            "ego_store_epsilon_changes_total",
            "set_epsilon calls").inc()
        self._mutated()

    def compact(self) -> None:
        """Fold the delta buffer into the main run; purge dead rows.

        The delta is EGO-sorted at the grid epsilon and merged with the
        live main rows through the external sort's k-way heap merge —
        the main run is consumed in order, never re-sorted.
        """
        if not self._delta_rowids and not self._main_dead:
            return
        args = {"delta": len(self._delta_rowids),
                "dead": self._main_dead,
                "main": len(self._main_rowids)}
        with self._trace.span("store_compaction", cat="store", args=args):
            runs = []
            if len(self._main_rowids):
                live = ~self._row_dead[self._main_rowids]
                runs.append((self._main_rowids[live],
                             self._main_pts[live]))
            if self._delta_rowids:
                d_ids = np.asarray(self._delta_rowids, dtype=np.int64)
                d_pts = np.asarray(self._delta_pts, dtype=np.float64)
                order = ego_sort_order(d_pts, self.grid_epsilon, d_ids)
                runs.append((d_ids[order],
                             np.ascontiguousarray(d_pts[order])))
            if runs:
                ids, pts = merge_sorted_arrays(
                    runs, lambda p: grid_cells(p, self.grid_epsilon))
            else:
                ids = np.empty(0, dtype=np.int64)
                pts = np.empty((0, self._dims or 0))
            self._set_main(ids, pts)
            self._delta_rowids = []
            self._delta_pts = []
            self._delta_pos = {}
            self._main_dead = 0
        self._counts["compactions"] += 1
        self._metrics.counter(
            "ego_store_compactions_total",
            "Delta-buffer compactions").inc()
        self._update_gauges()

    # -- queries -------------------------------------------------------------

    def join(self, epsilon: Optional[float] = None) -> np.ndarray:
        """The ε self-join of the live point set, canonical user-id pairs.

        Returns an ``(n, 2)`` int64 array with ``min < max`` per row,
        lexicographically sorted — the same canonical form the verify
        subsystem digests, directly comparable with any batch join of
        :meth:`live_points`.  Results are LRU-cached per
        ``(epsilon, data version)``.
        """
        eps = self._epsilon if epsilon is None \
            else validate_epsilon(epsilon)
        key = ("join", float(eps), self._version)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        with self._trace.span("store_join", cat="store",
                              args={"epsilon": eps}):
            result = self._join_rowids(eps, collect_distances=False)
            pairs = self._canonical_user_pairs(result)
        self._count_query("join")
        self._cache_put(key, pairs)
        return pairs

    def join_result(self, epsilon: Optional[float] = None,
                    collect_distances: bool = False) -> JoinResult:
        """The self-join as a :class:`JoinResult` in user-id space.

        The streaming shape the ``repro.apps`` clients consume;
        uncached (distances and chunk layout are not canonical).
        """
        eps = self._epsilon if epsilon is None \
            else validate_epsilon(epsilon)
        raw = self._join_rowids(eps, collect_distances=collect_distances)
        a, b = raw.pairs()
        live = ~(self._row_dead[a] | self._row_dead[b]) if len(a) else \
            np.empty(0, dtype=bool)
        out = JoinResult(collect_distances=collect_distances)
        if len(a):
            dists = raw.distances()[live] if collect_distances else None
            out.add_batch(self._row_user[a[live]],
                          self._row_user[b[live]], distances=dists)
        self._count_query("join")
        return out

    def range(self, query: np.ndarray,
              epsilon: Optional[float] = None
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Live points within ε of ``query``: ``(ids, distances)``.

        Sorted by (distance, id); includes exact matches at distance 0.
        """
        return self.range_batch(np.asarray(query)[None, :], epsilon)[0]

    def range_batch(self, queries: np.ndarray,
                    epsilon: Optional[float] = None
                    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batched range queries: one store pass for many queries.

        All queries are EGO-sorted into one sequence and joined against
        the (interval-sliced) main run and the delta in a single
        context — the request-batching path ``batch`` uses per epsilon
        group.
        """
        eps = self._epsilon if epsilon is None \
            else validate_epsilon(epsilon)
        qs = ensure_finite(np.asarray(queries, dtype=np.float64))
        if qs.ndim != 2:
            raise ValueError(f"queries must be (m, d), got {qs.shape}")
        m = len(qs)
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        if m == 0:
            return []
        if self._dims is None or not len(self._id_rowid):
            self._count_query("range")
            return [empty] * m
        if qs.shape[1] != self._dims:
            raise ValueError(f"expected {self._dims}-dimensional queries, "
                             f"got {qs.shape[1]}")
        with self._trace.span("store_range", cat="store",
                              args={"queries": m, "epsilon": eps}):
            rows = self._range_rows(qs, eps)
        self._count_query("range")
        out = []
        for qi in range(m):
            rowids, dists = rows[qi]
            uids = self._row_user[rowids]
            order = np.lexsort((uids, dists))
            out.append((uids[order], dists[order]))
        return out

    def knn(self, query: np.ndarray, k: int
            ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest live points to ``query``.

        Iterated doubling-radius range queries starting from the store
        ε (the paper's join-based kNN recipe); ties broken by id.
        Returns ``(ids, distances)`` of ``min(k, len(store))`` rows.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        want = min(k, len(self._id_rowid))
        if want == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0))
        with self._trace.span("store_knn", cat="store", args={"k": k}):
            eps = self._epsilon
            for _ in range(64):
                ids, dists = self.range(query, eps)
                if len(ids) >= want:
                    break
                eps *= 2.0
        return ids[:want], dists[:want]

    def batch(self, requests: SequenceT[Dict]) -> List[object]:
        """Serve a mixed request batch, grouping range queries.

        Each request is a dict: ``{"kind": "join", "epsilon": ...?}``,
        ``{"kind": "range", "query": point, "epsilon": ...?}`` or
        ``{"kind": "knn", "query": point, "k": ...}``.  Range requests
        sharing an epsilon are answered by one
        :meth:`range_batch` pass; results come back in request order.
        """
        results: List[object] = [None] * len(requests)
        range_groups: Dict[float, List[int]] = {}
        for i, req in enumerate(requests):
            kind = req.get("kind")
            if kind == "join":
                results[i] = self.join(req.get("epsilon"))
            elif kind == "knn":
                results[i] = self.knn(np.asarray(req["query"]),
                                      int(req["k"]))
            elif kind == "range":
                eps = req.get("epsilon")
                eps = self._epsilon if eps is None \
                    else validate_epsilon(eps)
                range_groups.setdefault(float(eps), []).append(i)
            else:
                raise ValueError(f"unknown request kind {kind!r}")
        for eps, idxs in range_groups.items():
            qs = np.stack([np.asarray(requests[i]["query"],
                                      dtype=np.float64) for i in idxs])
            for i, res in zip(idxs, self.range_batch(qs, eps)):
                results[i] = res
        return results

    # -- internals -----------------------------------------------------------

    def _set_dimensions(self, dims: int) -> None:
        self._dims = int(dims)
        self._main_pts = np.empty((0, self._dims))
        self._main_cells = np.empty((0, self._dims), dtype=np.int64)

    def _grow_row_tables(self, n: int) -> None:
        need = self._next_rowid + n
        if need <= len(self._row_user):
            return
        cap = max(need, 2 * len(self._row_user), 16)
        user = np.empty(cap, dtype=np.int64)
        dead = np.zeros(cap, dtype=bool)
        user[:len(self._row_user)] = self._row_user
        dead[:len(self._row_dead)] = self._row_dead
        self._row_user = user
        self._row_dead = dead

    def _unit_keys_of(self, cells: np.ndarray) -> List[Tuple[int, ...]]:
        # Resident per-unit ε-interval metadata: the first-row cell key
        # of every unit brackets any interval bisection to ≤ 2 units.
        return [tuple(cells[i].tolist())
                for i in range(0, len(cells), self._unit_records)]

    def _set_main(self, rowids: np.ndarray, pts: np.ndarray) -> None:
        self._main_rowids = rowids
        self._main_pts = np.ascontiguousarray(pts)
        if self._dims is not None and self._main_pts.size == 0:
            self._main_pts = self._main_pts.reshape(0, self._dims)
        self._main_cells = grid_cells(self._main_pts, self.grid_epsilon) \
            if len(self._main_pts) else \
            np.empty((0, self._dims or 0), dtype=np.int64)
        self._unit_keys = self._unit_keys_of(self._main_cells)
        self._coarse_views.clear()

    def _main_view(self, width: float) -> _MainView:
        """The main run ordered (with cells and unit keys) at ``width``.

        ``width == grid_epsilon`` is the resident order itself (no
        copy).  Coarser widths cannot reuse that order — lexicographic
        order does not survive cell coarsening — so they get a
        re-ordered view, built once and cached until the main run next
        changes.
        """
        if width == self.grid_epsilon:
            return _MainView(self.grid_epsilon, self._main_rowids,
                             self._main_pts, self._main_cells,
                             self._unit_keys)
        view = self._coarse_views.get(width)
        if view is not None:
            self._coarse_views.move_to_end(width)
            return view
        order = ego_sort_order(self._main_pts, width, self._main_rowids)
        pts = np.ascontiguousarray(self._main_pts[order])
        cells = grid_cells(pts, width) if len(pts) else \
            np.empty((0, self._dims or 0), dtype=np.int64)
        view = _MainView(width, self._main_rowids[order], pts, cells,
                         self._unit_keys_of(cells))
        self._coarse_views[width] = view
        while len(self._coarse_views) > MAX_COARSE_VIEWS:
            self._coarse_views.popitem(last=False)
        return view

    def _mutated(self) -> None:
        self._version += 1
        self._invalidate_cache()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self._metrics.gauge("ego_store_live_points",
                            "Live points").set(len(self._id_rowid))
        self._metrics.gauge("ego_store_delta_points",
                            "Delta-buffer rows").set(
            len(self._delta_rowids))
        self._metrics.gauge("ego_store_data_version",
                            "Data version").set(self._version)

    def _count_query(self, kind: str) -> None:
        self._counts["queries"] += 1
        self._metrics.counter("ego_store_queries_total",
                              "Queries served",
                              labelnames=("kind",)).labels(kind).inc()

    # -- cache ---------------------------------------------------------------

    def _invalidate_cache(self) -> None:
        # The staleness guard: the version was bumped before this call,
        # so no surviving entry may be keyed at (or stamped with) the
        # new version — one would mean a query result written before
        # the mutation could be served after it.
        survivors = [key for key, (version, _value) in self._cache.items()
                     if version == self._version
                     or key[-1] == self._version]
        if survivors:
            raise StaleCacheError(
                f"cache entries {survivors!r} survived to data version "
                f"{self._version}")
        self._cache.clear()

    def _cache_get(self, key: tuple):
        entry = self._cache.get(key)
        if entry is None:
            self._cache_misses += 1
            self._metrics.counter("ego_store_cache_misses_total",
                                  "Join cache misses").inc()
            return None
        version, value = entry
        if version != self._version:
            # The key embeds the version, so this is unreachable unless
            # invalidation is broken — fail loudly, never serve stale.
            raise StaleCacheError(
                f"cache entry {key!r} written at version {version} "
                f"read at version {self._version}")
        self._cache.move_to_end(key)
        self._cache_hits += 1
        self._metrics.counter("ego_store_cache_hits_total",
                              "Join cache hits").inc()
        return value

    def _cache_put(self, key: tuple, value) -> None:
        if self._cache_size <= 0:
            return
        self._cache[key] = (self._version, value)
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    # -- join machinery ------------------------------------------------------

    def _query_grid(self, eps: float) -> float:
        """Grid width a join at ``eps`` runs on.

        ε up to the grid ε rides the resident order (the pruning grid
        stays at the sort width); anything larger gets its own width —
        and hence a re-ordered main view from :meth:`_main_view`.
        """
        if eps <= self.grid_epsilon + 1e-12:
            return self.grid_epsilon
        return float(eps)

    def _make_context(self, eps: float, result: JoinResult) -> JoinContext:
        return JoinContext(epsilon=eps, result=result,
                           minlen=self._minlen, engine=self._engine,
                           grid_epsilon=self._query_grid(eps),
                           metrics=self._metrics, trace=self._trace)

    def _delta_sequence(self, width: float) -> Optional[Sequence]:
        if not self._delta_rowids:
            return None
        d_ids = np.asarray(self._delta_rowids, dtype=np.int64)
        d_pts = np.asarray(self._delta_pts, dtype=np.float64)
        order = ego_sort_order(d_pts, width, d_ids)
        return Sequence(d_ids[order], np.ascontiguousarray(d_pts[order]),
                        width)

    def _main_interval(self, view: _MainView, lo_pt: np.ndarray,
                       hi_pt: np.ndarray) -> Tuple[int, int]:
        """Main-view slice that can contain mates of box ``[lo, hi]``.

        Lemmata 2/3 on the stored order: rows whose cells are
        lexicographically below ``cells(lo)`` (or above ``cells(hi)``)
        cannot hold a point within the box, because the first differing
        cell already separates the coordinates by more than the box
        allows (``floor_cells`` guarantees ``c·w ≤ x < (c+1)·w``).  The
        bounds are widened one ulp so float rounding of ``p ± ε`` can
        never exclude an exact-boundary mate.
        """
        if len(view.rowids) == 0:
            return 0, 0
        lo_key = tuple(grid_cells(np.nextafter(lo_pt, -np.inf),
                                  view.width).tolist())
        hi_key = tuple(grid_cells(np.nextafter(hi_pt, np.inf),
                                  view.width).tolist())
        lo = self._bisect_view(view, lo_key, "left")
        hi = self._bisect_view(view, hi_key, "right")
        return lo, hi

    def _bisect_view(self, view: _MainView, key: Tuple[int, ...],
                     side: str) -> int:
        """Row-index bisection, bracketed by the per-unit metadata."""
        n = len(view.rowids)
        u_lo = bisect.bisect_left(view.unit_keys, key)
        u_hi = bisect.bisect_right(view.unit_keys, key)
        lo = max(0, (u_lo - 1) * self._unit_records)
        hi = min(n, u_hi * self._unit_records)
        cells = view.cells
        while lo < hi:
            mid = (lo + hi) // 2
            row = tuple(cells[mid].tolist())
            if row < key or (side == "right" and row == key):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _join_rowids(self, eps: float,
                     collect_distances: bool) -> JoinResult:
        """Self-join in rowid space (dead rows included, filter after)."""
        result = JoinResult(collect_distances=collect_distances)
        if self._dims is None:
            return result
        ctx = self._make_context(eps, result)
        width = ctx.grid_epsilon
        view = self._main_view(width)
        if len(view.rowids):
            seq_main = Sequence(view.rowids, view.points, width)
            join_sequences(seq_main, seq_main, ctx)
        seq_delta = self._delta_sequence(width)
        if seq_delta is not None:
            join_sequences(seq_delta, seq_delta, ctx)
            if len(view.rowids):
                d_pts = seq_delta.points
                lo, hi = self._main_interval(view,
                                             d_pts.min(axis=0) - eps,
                                             d_pts.max(axis=0) + eps)
                if hi > lo:
                    seq_slice = Sequence(view.rowids[lo:hi],
                                         view.points[lo:hi], width)
                    join_sequences(seq_slice, seq_delta, ctx)
        return result

    def _range_rows(self, qs: np.ndarray, eps: float
                    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-query ``(rowids, distances)`` for a stacked query batch."""
        m = len(qs)
        result = JoinResult(collect_distances=True)
        ctx = self._make_context(eps, result)
        width = ctx.grid_epsilon
        # Queries get negative pseudo-ids, disjoint from rowids, so
        # each result pair identifies its query by sign.
        qids = -np.arange(1, m + 1, dtype=np.int64)
        order = ego_sort_order(qs, width, qids)
        seq_q = Sequence(qids[order], np.ascontiguousarray(qs[order]),
                         width)
        view = self._main_view(width)
        if len(view.rowids):
            lo, hi = self._main_interval(view, qs.min(axis=0) - eps,
                                         qs.max(axis=0) + eps)
            if hi > lo:
                seq_slice = Sequence(view.rowids[lo:hi],
                                     view.points[lo:hi], width)
                join_sequences(seq_slice, seq_q, ctx)
        seq_delta = self._delta_sequence(width)
        if seq_delta is not None:
            join_sequences(seq_delta, seq_q, ctx)
        a, b = result.pairs()
        dists = result.distances()
        rows: List[Tuple[List[int], List[float]]] = \
            [([], []) for _ in range(m)]
        if len(a):
            q_side = np.where(a < 0, a, b)
            r_side = np.where(a < 0, b, a)
            live = ~self._row_dead[r_side]
            q_side, r_side, dists = (q_side[live], r_side[live],
                                     dists[live])
            for qid, rowid, dist in zip(q_side.tolist(), r_side.tolist(),
                                        dists.tolist()):
                qi = -qid - 1
                rows[qi][0].append(rowid)
                rows[qi][1].append(dist)
        return [(np.asarray(r, dtype=np.int64), np.asarray(d))
                for r, d in rows]

    def _canonical_user_pairs(self, result: JoinResult) -> np.ndarray:
        a, b = result.pairs()
        if len(a) == 0:
            return np.empty((0, 2), dtype=np.int64)
        live = ~(self._row_dead[a] | self._row_dead[b])
        ua = self._row_user[a[live]]
        ub = self._row_user[b[live]]
        lo = np.minimum(ua, ub)
        hi = np.maximum(ua, ub)
        order = np.lexsort((hi, lo))
        return np.stack([lo[order], hi[order]], axis=1)
