"""Long-lived similarity-join service layer.

The batch pipeline sorts, joins and exits; :class:`EGOStore` keeps the
EGO-sorted order resident and maintains it under inserts, deletes and
epsilon changes, so the ROADMAP's service shape — many queries against
one slowly-changing data set — pays the sort once instead of per call.
See ``docs/SERVICE.md`` for the design.
"""

from .store import EGOStore, StaleCacheError, StoreStats

__all__ = ["EGOStore", "StaleCacheError", "StoreStats"]
